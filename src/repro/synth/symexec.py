"""Symbolic execution of process bodies into gate networks.

The executor mirrors :mod:`repro.sim.interp` but produces net handles
instead of values.  VHDL's read/write split is preserved: signal reads
always see the activation-entry value (``read_env``); writes accumulate
in ``write_env``; variables update immediately and start every
activation undefined (``None`` bits) — reading an undefined bit is a
synthesis error, which is exactly the latch/state condition the paper's
benchmarks must not contain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Symbol, SymbolKind
from repro.hdl.values import BV
from repro.netlist.netlist import CONST0, CONST1, NetlistBuilder
from repro.synth import bitops
from repro.synth.bitops import Bits


@dataclass(frozen=True)
class SymVal:
    """Type-tagged bit-vector of net handles (LSB first)."""

    kind: str          # "bit" | "bool" | "int" | "enum" | "vec"
    bits: Bits

    @property
    def width(self) -> int:
        return len(self.bits)

    def bit(self) -> int:
        if self.width != 1:
            raise SynthesisError(f"expected a single bit, got {self.width}")
        return self.bits[0]


def type_width(hdl_type: ty.HdlType) -> int:
    if isinstance(hdl_type, (ty.BitType, ty.BooleanType)):
        return 1
    if isinstance(hdl_type, ty.BitVectorType):
        return hdl_type.width
    if isinstance(hdl_type, ty.IntegerType):
        if hdl_type.low < 0:
            raise SynthesisError(
                f"negative integer range {hdl_type} is not synthesizable"
            )
        return hdl_type.bit_width
    if isinstance(hdl_type, ty.EnumType):
        return hdl_type.bit_width
    raise SynthesisError(f"unsupported type {hdl_type}")


def type_kind(hdl_type: ty.HdlType) -> str:
    if isinstance(hdl_type, ty.BitType):
        return "bit"
    if isinstance(hdl_type, ty.BooleanType):
        return "bool"
    if isinstance(hdl_type, ty.BitVectorType):
        return "vec"
    if isinstance(hdl_type, ty.IntegerType):
        return "int"
    if isinstance(hdl_type, ty.EnumType):
        return "enum"
    raise SynthesisError(f"unsupported type {hdl_type}")


def encode_const(value, hdl_type: ty.HdlType) -> SymVal:
    """Encode a folded constant as sentinel bits."""
    kind = type_kind(hdl_type)
    if kind == "vec":
        if not isinstance(value, BV):
            raise SynthesisError(f"expected BV constant, got {value!r}")
        return SymVal("vec", bitops.const_bits(value.value, hdl_type.width))
    if kind == "bool":
        return SymVal("bool", bitops.const_bits(1 if value else 0, 1))
    if kind == "int":
        # Integer constants are universal: width follows the value, not
        # the (possibly unconstrained) declared subtype.
        if int(value) < 0:
            raise SynthesisError(
                f"negative constant {value} is not synthesizable"
            )
        width = max(int(value).bit_length(), 1)
        return SymVal("int", bitops.const_bits(int(value), width))
    return SymVal(kind, bitops.const_bits(int(value), type_width(hdl_type)))


class SymExec:
    """Executes one process body symbolically."""

    def __init__(
        self,
        builder: NetlistBuilder,
        read_env: dict[str, SymVal],
        write_seed: dict[str, SymVal],
        variables: list[Symbol],
        const_only: bool = False,
    ):
        self._b = builder
        self._read_env = read_env
        self.write_env: dict[str, SymVal] = dict(write_seed)
        self._vars: dict[str, SymVal] = {
            var.name: SymVal(
                type_kind(var.ty), (None,) * type_width(var.ty)
            )
            for var in variables
        }
        self._var_types = {var.name: var.ty for var in variables}
        self._loop_stack: list[tuple[str, int]] = []
        self._const_only = const_only

    # -- statements ----------------------------------------------------------

    def exec_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.SignalAssign):
            self._assign(stmt.target, self.eval(stmt.value, stmt.target),
                         signal=True)
        elif isinstance(stmt, ast.VarAssign):
            self._assign(stmt.target, self.eval(stmt.value, stmt.target),
                         signal=False)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt)
        elif isinstance(stmt, ast.ForLoop):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.NullStmt):
            pass
        else:  # pragma: no cover - analyzer limits statement kinds
            raise SynthesisError(f"cannot synthesize {type(stmt).__name__}")

    def _snapshot(self) -> tuple[dict[str, SymVal], dict[str, SymVal]]:
        return dict(self.write_env), dict(self._vars)

    def _restore(self, snap: tuple[dict[str, SymVal], dict[str, SymVal]]):
        self.write_env, self._vars = dict(snap[0]), dict(snap[1])

    def _merge(
        self,
        cond: int,
        then_state: tuple[dict[str, SymVal], dict[str, SymVal]],
        else_state: tuple[dict[str, SymVal], dict[str, SymVal]],
    ) -> None:
        merged_writes = self._merge_env(cond, then_state[0], else_state[0])
        merged_vars = self._merge_env(cond, then_state[1], else_state[1])
        self.write_env, self._vars = merged_writes, merged_vars

    def _merge_env(
        self, cond: int, then_env: dict[str, SymVal],
        else_env: dict[str, SymVal],
    ) -> dict[str, SymVal]:
        merged: dict[str, SymVal] = {}
        # Sorted: the merge creates mux gates, so iteration order sets
        # net allocation order — a set walk would make the emitted
        # netlist depend on PYTHONHASHSEED.
        for name in sorted(set(then_env) | set(else_env)):
            t = then_env.get(name)
            f = else_env.get(name)
            if t is None or f is None:
                present = t if t is not None else f
                # Defined on one path only: keep per-bit undefinedness.
                undef = SymVal(present.kind, (None,) * present.width)
                t = t if t is not None else undef
                f = f if f is not None else undef
            merged[name] = self._mux_val(cond, t, f)
        return merged

    def _mux_val(self, cond: int, t: SymVal, f: SymVal) -> SymVal:
        if t.bits == f.bits:
            return t
        width = max(t.width, f.width)
        t_bits = self._pad(t, width)
        f_bits = self._pad(f, width)
        out = []
        for i in range(width):
            a, b = t_bits[i], f_bits[i]
            if a is None and b is None:
                out.append(None)
            elif a is None or b is None:
                # One branch leaves the bit undefined; reading it later
                # is an error, so poison the merged bit.
                out.append(None) if a == b else out.append(
                    a if b is None else b
                )
                # A partially-defined merge keeps the defined branch's
                # value; the behavioural simulator would read stale
                # variable state here, which the analyzer forbids being
                # observed (reads of undefined vars raise).
                out[-1] = None
            else:
                out.append(self._b.mux(cond, a, b))
        return SymVal(t.kind, tuple(out))

    @staticmethod
    def _pad(val: SymVal, width: int) -> Bits:
        if val.width == width:
            return val.bits
        return tuple(val.bits) + (CONST0,) * (width - val.width)

    def _exec_if(self, stmt: ast.If) -> None:
        self._exec_if_arms(stmt.arms, stmt.else_body)

    def _exec_if_arms(self, arms, else_body) -> None:
        if not arms:
            self.exec_body(else_body)
            return
        cond_expr, body = arms[0]
        cond = self._as_bool_bit(self.eval(cond_expr))
        entry = self._snapshot()
        self.exec_body(body)
        then_state = self._snapshot()
        self._restore(entry)
        self._exec_if_arms(arms[1:], else_body)
        else_state = self._snapshot()
        self._merge(cond, then_state, else_state)

    def _exec_case(self, stmt: ast.Case) -> None:
        selector = self.eval(stmt.selector)
        arms: list[tuple[ast.Expr | None, list[ast.Stmt]]] = []
        else_body: list[ast.Stmt] = []
        whens = list(stmt.whens)
        has_others = whens and whens[-1].is_others
        if has_others:
            else_body = whens[-1].body
            whens = whens[:-1]
        elif whens:
            # Full coverage (checked by the analyzer): the final
            # alternative becomes the else branch.
            else_body = whens[-1].body
            whens = whens[:-1]
        if_arms = []
        for when in whens:
            conds = [
                bitops.equal(
                    self._b,
                    selector.bits,
                    self.eval(choice).bits,
                )
                for choice in when.choices
            ]
            cond = self._b.reduce_tree_or(conds)
            if_arms.append((cond, when.body))
        self._exec_case_arms(if_arms, else_body)

    def _exec_case_arms(self, arms, else_body) -> None:
        if not arms:
            self.exec_body(else_body)
            return
        cond, body = arms[0]
        entry = self._snapshot()
        self.exec_body(body)
        then_state = self._snapshot()
        self._restore(entry)
        self._exec_case_arms(arms[1:], else_body)
        else_state = self._snapshot()
        self._merge(cond, then_state, else_state)

    def _exec_for(self, stmt: ast.ForLoop) -> None:
        low = self._static_int(stmt.low)
        high = self._static_int(stmt.high)
        if stmt.direction == "to":
            values = range(low, high + 1)
        else:
            values = range(low, high - 1, -1)
        self._loop_stack.append((stmt.var, 0))
        try:
            for value in values:
                self._loop_stack[-1] = (stmt.var, value)
                self.exec_body(stmt.body)
        finally:
            self._loop_stack.pop()

    def _static_int(self, expr: ast.Expr) -> int:
        val = self.eval(expr)
        out = 0
        for i, bit in enumerate(val.bits):
            if bit == CONST1:
                out |= 1 << i
            elif bit != CONST0:
                raise SynthesisError("expected a static bound")
        return out

    # -- assignment -------------------------------------------------------------

    def _assign(self, target: ast.Expr, value: SymVal, signal: bool) -> None:
        if isinstance(target, ast.Name):
            symbol: Symbol = target.symbol
            fitted = self._fit_to(value, symbol.ty)
            self._store(symbol, fitted, signal)
            return
        if isinstance(target, ast.Index):
            symbol = target.prefix.symbol
            current = self._load_for_update(symbol, signal)
            index = self.eval(target.index)
            bit = self._as_single_bit(value)
            vec_type: ty.BitVectorType = symbol.ty
            new_bits = self._set_element(current, index, bit, vec_type)
            self._store(symbol, SymVal("vec", new_bits), signal)
            return
        if isinstance(target, ast.Slice):
            symbol = target.prefix.symbol
            current = self._load_for_update(symbol, signal)
            vec_type = symbol.ty
            left = self._static_int(target.left)
            right = self._static_int(target.right)
            high = vec_type.bit_index(left)
            low = vec_type.bit_index(right)
            if value.width != high - low + 1:
                raise SynthesisError("slice assignment width mismatch")
            bits = list(current.bits)
            bits[low : high + 1] = value.bits
            self._store(symbol, SymVal("vec", tuple(bits)), signal)
            return
        raise SynthesisError(
            f"unsupported assignment target {type(target).__name__}"
        )

    def _set_element(
        self, current: SymVal, index: SymVal, bit: int,
        vec_type: ty.BitVectorType,
    ) -> Bits:
        """Write one (possibly dynamically indexed) vector element."""
        static = self._try_static(index)
        bits = list(current.bits)
        if static is not None:
            offset = vec_type.bit_index(static)
            bits[offset] = bit
            return tuple(bits)
        for offset in range(vec_type.width):
            vhdl_index = offset + vec_type.right
            hit = bitops.equal(
                self._b, index.bits,
                bitops.const_bits(vhdl_index, max(index.width, 1)),
            )
            if bits[offset] is None:
                raise SynthesisError(
                    "dynamic bit write over an undefined base"
                )
            bits[offset] = self._b.mux(hit, bit, bits[offset])
        return tuple(bits)

    def _load_for_update(self, symbol: Symbol, signal: bool) -> SymVal:
        if signal:
            value = self.write_env.get(symbol.name)
            if value is None:
                raise SynthesisError(
                    f"partial write to {symbol.name!r} before any full "
                    "assignment in this process"
                )
            return value
        return self._vars[symbol.name]

    def _store(self, symbol: Symbol, value: SymVal, signal: bool) -> None:
        if signal:
            if symbol.kind is SymbolKind.VARIABLE:
                raise SynthesisError(
                    f"signal assignment to variable {symbol.name!r}"
                )
            self.write_env[symbol.name] = value
        else:
            self._vars[symbol.name] = value

    def _fit_to(self, value: SymVal, target_type: ty.HdlType) -> SymVal:
        width = type_width(target_type)
        kind = type_kind(target_type)
        if value.width == width:
            return SymVal(kind, value.bits)
        if value.width > width:
            # In-range designs only ever truncate zero high bits.
            return SymVal(kind, bitops.truncate(value.bits, width))
        return SymVal(kind, bitops.zext(value.bits, width))

    # -- expressions -----------------------------------------------------------

    def eval(self, expr: ast.Expr, target: ast.Expr | None = None) -> SymVal:
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.IntLit):
            width = max(expr.value.bit_length(), 1)
            return SymVal("int", bitops.const_bits(expr.value, width))
        if isinstance(expr, ast.BitLit):
            return SymVal("bit", bitops.const_bits(expr.value, 1))
        if isinstance(expr, ast.BoolLit):
            return SymVal("bool", bitops.const_bits(int(expr.value), 1))
        if isinstance(expr, ast.BitStringLit):
            bv = BV.from_string(expr.bits)
            return SymVal("vec", bitops.const_bits(bv.value, bv.width))
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        if isinstance(expr, ast.Slice):
            return self._eval_slice(expr)
        if isinstance(expr, ast.OthersAggregate):
            bit = self._as_single_bit(self.eval(expr.value))
            width = type_width(expr.ty)
            return SymVal("vec", (bit,) * width)
        raise SynthesisError(
            f"cannot synthesize expression {type(expr).__name__}"
        )

    def _eval_name(self, expr: ast.Name) -> SymVal:
        symbol: Symbol = expr.symbol
        kind = symbol.kind
        if kind in (SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL):
            return encode_const(symbol.init, symbol.ty)
        if kind is SymbolKind.VARIABLE:
            value = self._vars[symbol.name]
            self._require_defined(value, symbol.name)
            return value
        if kind is SymbolKind.LOOP_VAR:
            for name, bound in reversed(self._loop_stack):
                if name == symbol.name:
                    width = max(bound.bit_length(), 1)
                    return SymVal("int", bitops.const_bits(bound, width))
            raise SynthesisError(f"unbound loop variable {symbol.name!r}")
        if self._const_only:
            raise SynthesisError(
                f"reset body reads signal {symbol.name!r}; reset values "
                "must be constants"
            )
        value = self._read_env.get(symbol.name)
        if value is None:
            raise SynthesisError(
                f"process reads {symbol.name!r} which it also drives "
                "(combinational latch/cycle)"
            )
        return value

    def _require_defined(self, value: SymVal, name: str) -> None:
        if any(bit is None for bit in value.bits):
            raise SynthesisError(
                f"variable {name!r} may be read before assignment"
            )

    def _eval_unary(self, expr: ast.Unary) -> SymVal:
        operand = self.eval(expr.operand)
        if expr.op == "not":
            self._require_all_defined(operand)
            return SymVal(operand.kind, bitops.bitwise_not(self._b, operand.bits))
        raise SynthesisError(f"unary {expr.op!r} is not synthesizable")

    def _eval_binary(self, expr: ast.Binary) -> SymVal:
        op = expr.op
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        self._require_all_defined(left)
        self._require_all_defined(right)
        if op in ("and", "or", "nand", "nor", "xor", "xnor"):
            return self._logical(op, left, right)
        if op in ("=", "/="):
            eq = bitops.equal(self._b, left.bits, right.bits)
            if op == "/=":
                eq = self._b.g_not(eq)
            return SymVal("bool", (eq,))
        if op in ("<", "<=", ">", ">="):
            if op == "<":
                bit = bitops.less_than(self._b, left.bits, right.bits)
            elif op == ">=":
                bit = self._b.g_not(
                    bitops.less_than(self._b, left.bits, right.bits)
                )
            elif op == ">":
                bit = bitops.less_than(self._b, right.bits, left.bits)
            else:
                bit = self._b.g_not(
                    bitops.less_than(self._b, right.bits, left.bits)
                )
            return SymVal("bool", (bit,))
        if op == "+":
            return SymVal("int", bitops.add(self._b, left.bits, right.bits))
        if op == "-":
            return SymVal("int", bitops.sub(self._b, left.bits, right.bits))
        if op == "*":
            return SymVal("int", bitops.mul(self._b, left.bits, right.bits))
        if op in ("mod", "rem"):
            modulus = self._try_static(right)
            if modulus is None:
                raise SynthesisError(
                    f"{op} requires a constant right operand"
                )
            return SymVal(
                "int", bitops.mod_const(self._b, left.bits, modulus)
            )
        if op == "&":
            # VHDL concat: left operand supplies the high-order bits.
            return SymVal("vec", tuple(right.bits) + tuple(left.bits))
        raise SynthesisError(f"binary {op!r} is not synthesizable")

    def _logical(self, op: str, left: SymVal, right: SymVal) -> SymVal:
        if left.width != right.width:
            raise SynthesisError("logical operands of different widths")
        gate = {
            "and": self._b.g_and,
            "or": self._b.g_or,
            "nand": self._b.g_nand,
            "nor": self._b.g_nor,
            "xor": self._b.g_xor,
            "xnor": self._b.g_xnor,
        }[op]
        bits = tuple(
            gate(left.bits[i], right.bits[i]) for i in range(left.width)
        )
        return SymVal(left.kind, bits)

    def _eval_index(self, expr: ast.Index) -> SymVal:
        vector = self.eval(expr.prefix)
        self._require_all_defined(vector)
        index = self.eval(expr.index)
        vec_type: ty.BitVectorType = expr.prefix.ty
        static = self._try_static(index)
        if static is not None:
            return SymVal("bit", (vector.bits[vec_type.bit_index(static)],))
        result = vector.bits[0]
        for offset in range(1, vec_type.width):
            vhdl_index = offset + vec_type.right
            hit = bitops.equal(
                self._b, index.bits,
                bitops.const_bits(vhdl_index, max(index.width, 1)),
            )
            result = self._b.mux(hit, vector.bits[offset], result)
        return SymVal("bit", (result,))

    def _eval_slice(self, expr: ast.Slice) -> SymVal:
        vector = self.eval(expr.prefix)
        vec_type: ty.BitVectorType = expr.prefix.ty
        left = self._static_int(expr.left)
        right = self._static_int(expr.right)
        high = vec_type.bit_index(left)
        low = vec_type.bit_index(right)
        return SymVal("vec", tuple(vector.bits[low : high + 1]))

    # -- helpers -----------------------------------------------------------------

    def _try_static(self, value: SymVal) -> int | None:
        out = 0
        for i, bit in enumerate(value.bits):
            if bit == CONST1:
                out |= 1 << i
            elif bit != CONST0:
                return None
        return out

    def _as_bool_bit(self, value: SymVal) -> int:
        if value.kind != "bool" or value.width != 1:
            raise SynthesisError("condition must be boolean")
        self._require_all_defined(value)
        return value.bits[0]

    def _as_single_bit(self, value: SymVal) -> int:
        if value.width != 1:
            raise SynthesisError("expected a single-bit value")
        self._require_all_defined(value)
        return value.bits[0]

    def _require_all_defined(self, value: SymVal) -> None:
        if any(bit is None for bit in value.bits):
            raise SynthesisError(
                "expression reads a value that may be unassigned"
            )
