"""The mutant record and AST cloning for replacement construction."""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.hdl import ast


@dataclass(frozen=True)
class Mutant:
    """One first-order mutant.

    ``patch()`` yields the node-id substitution the interpreter applies;
    the design tree itself is never modified.
    """

    mid: int
    operator: str
    site_nid: int
    replacement: ast.Node
    description: str
    process_label: str

    def patch(self) -> dict[int, ast.Node]:
        return {self.site_nid: self.replacement}

    def __str__(self) -> str:
        return f"M{self.mid}[{self.operator}] {self.description}"


def clone_expr(node: ast.Expr) -> ast.Expr:
    """Deep-copy an expression with fresh node ids.

    Type and symbol annotations are preserved, so cloned trees evaluate
    without re-analysis.  Cloning is what lets an operator embed the
    original subtree inside a replacement (e.g. UOI's ``not (...)``)
    without creating a patch cycle on the original's node id.
    """
    fresh = ast.fresh_nid()
    if isinstance(node, (ast.Name, ast.IntLit, ast.BitLit, ast.BoolLit,
                         ast.BitStringLit, ast.EnumLit)):
        return dc_replace(node, nid=fresh)
    if isinstance(node, ast.Unary):
        return dc_replace(node, nid=fresh, operand=clone_expr(node.operand))
    if isinstance(node, ast.Binary):
        return dc_replace(
            node, nid=fresh,
            left=clone_expr(node.left), right=clone_expr(node.right),
        )
    if isinstance(node, ast.Index):
        return dc_replace(
            node, nid=fresh,
            prefix=clone_expr(node.prefix), index=clone_expr(node.index),
        )
    if isinstance(node, ast.Slice):
        return dc_replace(
            node, nid=fresh, prefix=clone_expr(node.prefix),
            left=clone_expr(node.left), right=clone_expr(node.right),
        )
    if isinstance(node, ast.Attribute):
        return dc_replace(node, nid=fresh, prefix=clone_expr(node.prefix))
    if isinstance(node, ast.Call):
        return dc_replace(
            node, nid=fresh, args=[clone_expr(a) for a in node.args]
        )
    if isinstance(node, ast.OthersAggregate):
        return dc_replace(node, nid=fresh, value=clone_expr(node.value))
    raise TypeError(f"cannot clone {type(node).__name__}")
