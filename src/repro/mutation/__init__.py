"""Mutation engine: operators, mutant generation, execution, scoring.

The paper applies high-level mutation operators to VHDL descriptions
([3] defines ten for VHDL; that reference being unavailable, the set is
reconstructed — see DESIGN.md §2).  The four operators the paper
evaluates by name (LOR, VR, CVR, CR) follow the paper's semantics
exactly; AOR, ROR, UOI, VCR, SDL and CCR complete the population the
sampling strategies draw from.

Mutants never copy the design: each is a patch table (node id ->
replacement node) consulted by the interpreter (mutant schema).
"""

from repro.mutation.generator import generate_mutants, mutants_by_operator
from repro.mutation.mutant import Mutant
from repro.mutation.execution import KillRecord, MutationEngine
from repro.mutation.operators import OPERATOR_NAMES, all_operators
from repro.mutation.score import (
    EquivalenceAnalysis,
    MutationScore,
    estimate_equivalents,
    mutation_score,
)

__all__ = [
    "EquivalenceAnalysis",
    "KillRecord",
    "Mutant",
    "MutationEngine",
    "MutationScore",
    "OPERATOR_NAMES",
    "all_operators",
    "estimate_equivalents",
    "generate_mutants",
    "mutants_by_operator",
    "mutation_score",
]
