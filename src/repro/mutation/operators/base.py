"""Operator protocol and the per-process site context."""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Design, Process, Symbol, SymbolKind


class SiteContext:
    """Everything an operator may consult at a mutation site.

    Exposes the pools of *visible data objects* (input ports, internal
    signals, and the current process's variables) grouped so the
    replacement operators can find same-type alternatives quickly.
    Output ports and loop variables are excluded from pools: the former
    to keep mutants synthesizable in principle, the latter because their
    scope would not contain most sites.
    """

    def __init__(self, design: Design, process: Process):
        self.design = design
        self.process = process
        pool: list[Symbol] = [
            s
            for s in design.signal_like_symbols
            if s.kind in (SymbolKind.PORT_IN, SymbolKind.SIGNAL)
        ]
        pool.extend(process.variables)
        self.data_pool = pool
        self.int_constants: list[Symbol] = [
            s
            for s in design.constants.values()
            if isinstance(s.ty, ty.IntegerType)
        ]

    def same_type_alternatives(self, symbol: Symbol) -> list[Symbol]:
        """Pool members type-compatible with ``symbol`` (excluding it)."""
        return [
            other
            for other in self.data_pool
            if other.name != symbol.name
            and _compatible(symbol.ty, other.ty)
        ]

    def symbols_of_type(self, wanted: ty.HdlType) -> list[Symbol]:
        return [s for s in self.data_pool if _compatible(wanted, s.ty)]


def _compatible(a: ty.HdlType, b: ty.HdlType) -> bool:
    """VHDL base-type compatibility (ranges are runtime concerns)."""
    if isinstance(a, ty.IntegerType):
        return isinstance(b, ty.IntegerType)
    return a.compatible(b)


class MutationOperator:
    """Base class; operators override the hooks that apply to them.

    Hooks yield ``(replacement_node, description)`` pairs.  Replacement
    nodes must be fully typed (``ty``/``symbol`` set) and carry fresh
    node ids; the generator wraps them into :class:`Mutant` records.
    """

    name = "?"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        """Mutations replacing the expression node ``expr``."""
        return ()

    def stmt_mutations(self, stmt: ast.Stmt, ctx: SiteContext):
        """Mutations replacing the statement node ``stmt``."""
        return ()
