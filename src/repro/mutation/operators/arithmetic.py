"""AOR — Arithmetic Operator Replacement."""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.hdl import ast
from repro.hdl.printer import expr_to_text
from repro.mutation.mutant import clone_expr
from repro.mutation.operators.base import MutationOperator, SiteContext

_ARITH_OPS = ("+", "-", "*", "mod", "rem")


class AOR(MutationOperator):
    """Replace one arithmetic operator with each alternative.

    ``mod``/``rem`` replacements are restricted to each other and to
    ``-`` (introducing ``mod`` where the right operand may be zero is a
    run-time error the engine would count as a trivial kill, which is
    still a legal mutant — the paper's operators do not exclude it).
    """

    name = "AOR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not isinstance(expr, ast.Binary) or expr.op not in _ARITH_OPS:
            return
        original = expr_to_text(expr)
        for op in _ARITH_OPS:
            if op == expr.op:
                continue
            replacement = dc_replace(
                expr,
                nid=ast.fresh_nid(),
                op=op,
                left=clone_expr(expr.left),
                right=clone_expr(expr.right),
            )
            yield replacement, f"{original} -> {expr_to_text(replacement)}"
