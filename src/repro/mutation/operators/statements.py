"""SDL — Statement Deletion."""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl.printer import stmt_to_text
from repro.mutation.operators.base import MutationOperator, SiteContext

_DELETABLE = (ast.SignalAssign, ast.VarAssign, ast.If, ast.Case, ast.ForLoop)


class SDL(MutationOperator):
    """Replace a statement with ``null;``.

    Compound statements (if/case/loop) are deleted as a whole, which
    models omitted functionality; the generator never offers the clocked
    template's guard ``if`` because its node id is in ``guard_nids``.
    """

    name = "SDL"

    def stmt_mutations(self, stmt: ast.Stmt, ctx: SiteContext):
        if not isinstance(stmt, _DELETABLE):
            return
        replacement = ast.NullStmt()
        summary = stmt_to_text(stmt).splitlines()[0].strip()
        if len(summary) > 60:
            summary = summary[:57] + "..."
        yield replacement, f"delete: {summary}"
