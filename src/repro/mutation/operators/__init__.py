"""The reconstructed ten-operator VHDL mutation set.

==== =============================== ===========================================
Name Long name                       Example
==== =============================== ===========================================
AOR  Arithmetic Operator Replacement ``cnt + 1`` -> ``cnt - 1``
LOR  Logical Operator Replacement    ``a and b`` -> ``a or b``
ROR  Relational Operator Replacement ``cnt < limit`` -> ``cnt <= limit``
UOI  Unary Operator Insertion        ``line1`` -> ``not line1``
VR   Variable Replacement            ``line1`` -> ``line2``
CR   Constant Replacement            ``limit (6)`` -> ``7``; ``'1'`` -> ``'0'``
CVR  Constant-for-Variable Replacement ``cnt`` -> ``0``
VCR  Variable-for-Constant Replacement ``6`` -> ``cnt``
SDL  Statement Deletion              ``outp <= ...;`` -> ``null;``
CCR  Case Choice Replacement         ``when 2 =>`` -> ``when 3 =>``
==== =============================== ===========================================

LOR, VR, CVR and CR are the operators the paper's Table 1 evaluates.
"""

from repro.mutation.operators.base import MutationOperator, SiteContext
from repro.mutation.operators.arithmetic import AOR
from repro.mutation.operators.case_ops import CCR
from repro.mutation.operators.constants import CR
from repro.mutation.operators.logical import LOR
from repro.mutation.operators.relational import ROR
from repro.mutation.operators.replacement import CVR, VCR, VR
from repro.mutation.operators.statements import SDL
from repro.mutation.operators.unary import UOI

#: Canonical generation order (stable mutant numbering).
OPERATOR_NAMES = (
    "AOR", "LOR", "ROR", "UOI", "VR", "CR", "CVR", "VCR", "SDL", "CCR",
)

_REGISTRY = {
    "AOR": AOR,
    "LOR": LOR,
    "ROR": ROR,
    "UOI": UOI,
    "VR": VR,
    "CR": CR,
    "CVR": CVR,
    "VCR": VCR,
    "SDL": SDL,
    "CCR": CCR,
}


def all_operators() -> list[MutationOperator]:
    """Fresh instances of every operator, in canonical order."""
    return [_REGISTRY[name]() for name in OPERATOR_NAMES]


def operators_named(names) -> list[MutationOperator]:
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown mutation operators: {unknown}")
    return [_REGISTRY[name]() for name in names]


__all__ = [
    "AOR", "CCR", "CR", "CVR", "LOR", "MutationOperator", "OPERATOR_NAMES",
    "ROR", "SDL", "SiteContext", "UOI", "VCR", "VR", "all_operators",
    "operators_named",
]
