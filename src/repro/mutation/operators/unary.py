"""UOI — Unary Operator Insertion."""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.printer import expr_to_text
from repro.mutation.mutant import clone_expr
from repro.mutation.operators.base import MutationOperator, SiteContext


class UOI(MutationOperator):
    """Wrap a bit/boolean/vector expression in ``not``.

    Applied to names, indexed names and binary expressions; wrapping
    literals is CR's territory and wrapping an existing ``not`` would
    only cancel it.
    """

    name = "UOI"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not isinstance(expr, (ast.Name, ast.Index, ast.Binary)):
            return
        if not isinstance(
            expr.ty, (ty.BitType, ty.BooleanType, ty.BitVectorType)
        ):
            return
        replacement = ast.Unary(op="not", operand=clone_expr(expr))
        replacement.ty = expr.ty
        yield replacement, (
            f"{expr_to_text(expr)} -> {expr_to_text(replacement)}"
        )
