"""VR / CVR / VCR — name and constant substitution operators."""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Symbol, SymbolKind
from repro.hdl.printer import expr_to_text
from repro.mutation.operators.base import MutationOperator, SiteContext

_DATA_KINDS = (SymbolKind.PORT_IN, SymbolKind.SIGNAL, SymbolKind.VARIABLE)

#: Integer ranges wider than this only contribute named constants to the
#: CVR pool (enumerating bounds of a 2**31 range is meaningless).
_MAX_RANGE_SPAN = 1 << 16


def _name_node(symbol: Symbol) -> ast.Name:
    node = ast.Name(ident=symbol.name)
    node.symbol = symbol
    node.ty = symbol.ty
    return node


def _is_data_name(expr: ast.Expr) -> bool:
    return (
        isinstance(expr, ast.Name)
        and expr.symbol is not None
        and expr.symbol.kind in _DATA_KINDS
    )


class VR(MutationOperator):
    """Variable Replacement: a data object reference becomes another
    visible, type-compatible data object (the paper's VR)."""

    name = "VR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not _is_data_name(expr):
            return
        original = expr_to_text(expr)
        for other in ctx.same_type_alternatives(expr.symbol):
            yield _name_node(other), f"{original} -> {other.name}"


class CVR(MutationOperator):
    """Constant-for-Variable Replacement: a data object reference
    becomes a constant of its type (the paper's CVR)."""

    name = "CVR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not _is_data_name(expr):
            return
        original = expr_to_text(expr)
        for node, text in _constants_for_type(expr.symbol.ty, ctx):
            yield node, f"{original} -> {text}"


class VCR(MutationOperator):
    """Variable-for-Constant Replacement: a constant reference becomes
    a visible, type-compatible data object."""

    name = "VCR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        wanted = _constant_site_type(expr)
        if wanted is None:
            return
        original = expr_to_text(expr)
        for other in ctx.symbols_of_type(wanted):
            yield _name_node(other), f"{original} -> {other.name}"


def _constant_site_type(expr: ast.Expr) -> ty.HdlType | None:
    """The type of a constant-reference site, or None if not one."""
    if isinstance(expr, ast.IntLit):
        return ty.IntegerType()
    if isinstance(expr, ast.BitLit):
        return ty.BIT
    if isinstance(expr, ast.BitStringLit):
        return expr.ty if isinstance(expr.ty, ty.BitVectorType) else None
    if isinstance(expr, ast.Name) and expr.symbol is not None:
        if expr.symbol.kind in (SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL):
            return expr.symbol.ty
    return None


def _constants_for_type(hdl_type: ty.HdlType, ctx: SiteContext):
    """Candidate constant nodes for CVR, typed and described."""
    if isinstance(hdl_type, ty.BitType):
        for value in (0, 1):
            node = ast.BitLit(value=value)
            node.ty = ty.BIT
            yield node, f"'{value}'"
        return
    if isinstance(hdl_type, ty.BooleanType):
        for value in (False, True):
            node = ast.BoolLit(value=value)
            node.ty = ty.BOOLEAN
            yield node, str(value).lower()
        return
    if isinstance(hdl_type, ty.IntegerType):
        values: list[tuple[int, str]] = []
        span = hdl_type.high - hdl_type.low
        if 0 <= span <= _MAX_RANGE_SPAN:
            values.append((hdl_type.low, str(hdl_type.low)))
            values.append((hdl_type.high, str(hdl_type.high)))
        for const in ctx.int_constants:
            values.append((const.init, const.name))
        seen: set[int] = set()
        for value, text in values:
            if value in seen or value < 0:
                continue
            seen.add(value)
            node = ast.IntLit(value=value)
            node.ty = ty.IntegerType(value, value)
            yield node, text
        return
    if isinstance(hdl_type, ty.EnumType):
        for index, literal in enumerate(hdl_type.literals):
            node = ast.EnumLit(
                type_name=hdl_type.name, literal=literal, index=index
            )
            node.ty = hdl_type
            yield node, literal
        return
    if isinstance(hdl_type, ty.BitVectorType):
        width = hdl_type.width
        for bits in ("0" * width, "1" * width):
            node = ast.BitStringLit(bits=bits)
            node.ty = ty.BitVectorType(width - 1, 0)
            yield node, f'"{bits}"'
