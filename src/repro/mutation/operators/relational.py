"""ROR — Relational Operator Replacement."""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.printer import expr_to_text
from repro.mutation.mutant import clone_expr
from repro.mutation.operators.base import MutationOperator, SiteContext

_EQUALITY = ("=", "/=")
_ORDERING = ("<", "<=", ">", ">=")


class ROR(MutationOperator):
    """Replace a relational operator with each legal alternative.

    Ordering operators only exist for integers in the subset, so
    equality over bits/enums/vectors can only flip between ``=`` and
    ``/=`` while integer comparisons draw from all six.
    """

    name = "ROR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not isinstance(expr, ast.Binary):
            return
        if expr.op not in _EQUALITY + _ORDERING:
            return
        operand_ty = expr.left.ty
        if isinstance(operand_ty, ty.IntegerType):
            alternatives = _EQUALITY + _ORDERING
        else:
            alternatives = _EQUALITY
        original = expr_to_text(expr)
        for op in alternatives:
            if op == expr.op:
                continue
            replacement = dc_replace(
                expr,
                nid=ast.fresh_nid(),
                op=op,
                left=clone_expr(expr.left),
                right=clone_expr(expr.right),
            )
            yield replacement, f"{original} -> {expr_to_text(replacement)}"
