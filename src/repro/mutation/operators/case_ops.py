"""CCR — Case Choice Replacement."""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import SymbolKind
from repro.hdl.printer import expr_to_text
from repro.mutation.operators.base import MutationOperator, SiteContext


class CCR(MutationOperator):
    """Rewrite one ``when`` choice to a neighbouring or sibling value.

    Candidates per choice: the values used by the *other* alternatives
    of the same case plus the choice's off-by-one neighbours inside the
    selector domain.  Because the interpreter matches alternatives in
    order, a duplicated value redirects the branch — exactly the
    misrouted-transition design error this operator models.
    """

    name = "CCR"

    def stmt_mutations(self, stmt: ast.Stmt, ctx: SiteContext):
        # CCR patches choice *expressions*; it hooks the statement walk
        # because choices are not rvalue expressions.
        return ()

    def choice_mutations(self, stmt: ast.Case, ctx: SiteContext):
        """Yield (choice_node, replacement, description) triples."""
        selector_ty = stmt.selector.ty
        all_values: list[tuple[object, ast.Expr]] = []
        for when in stmt.whens:
            for choice in when.choices:
                all_values.append((_choice_value(choice), choice))
        for when in stmt.whens:
            for choice in when.choices:
                own = _choice_value(choice)
                candidates: dict[object, str] = {}
                for value, node in all_values:
                    if value != own:
                        candidates[value] = expr_to_text(node)
                for neighbour in _neighbours(own, selector_ty):
                    if neighbour != own and neighbour not in candidates:
                        candidates[neighbour] = None
                for value in sorted(candidates, key=repr):
                    replacement = _make_choice(value, selector_ty)
                    if replacement is None:
                        continue
                    text = candidates[value] or expr_to_text(replacement)
                    yield choice, replacement, (
                        f"when {expr_to_text(choice)} -> when {text}"
                    )


def _choice_value(choice: ast.Expr):
    if isinstance(choice, ast.IntLit):
        return choice.value
    if isinstance(choice, ast.BitLit):
        return choice.value
    if isinstance(choice, ast.BitStringLit):
        return choice.bits
    if isinstance(choice, ast.EnumLit):
        return choice.index
    if isinstance(choice, ast.Name) and choice.symbol is not None:
        if choice.symbol.kind in (
            SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL
        ):
            return choice.symbol.init
    return None


def _neighbours(value, selector_ty):
    if isinstance(selector_ty, ty.IntegerType) and isinstance(value, int):
        lows = []
        if value + 1 <= selector_ty.high:
            lows.append(value + 1)
        if value - 1 >= selector_ty.low:
            lows.append(value - 1)
        return lows
    if isinstance(selector_ty, ty.EnumType) and isinstance(value, int):
        count = len(selector_ty.literals)
        return [v for v in (value + 1, value - 1) if 0 <= v < count]
    if isinstance(selector_ty, ty.BitType) and isinstance(value, int):
        return [value ^ 1]
    return []


def _make_choice(value, selector_ty) -> ast.Expr | None:
    if value is None:
        return None
    if isinstance(selector_ty, ty.IntegerType):
        node = ast.IntLit(value=int(value))
        node.ty = selector_ty
        return node
    if isinstance(selector_ty, ty.BitType):
        node = ast.BitLit(value=int(value))
        node.ty = ty.BIT
        return node
    if isinstance(selector_ty, ty.EnumType):
        index = int(value)
        node = ast.EnumLit(
            type_name=selector_ty.name,
            literal=selector_ty.literals[index],
            index=index,
        )
        node.ty = selector_ty
        return node
    if isinstance(selector_ty, ty.BitVectorType) and isinstance(value, str):
        node = ast.BitStringLit(bits=value)
        node.ty = ty.BitVectorType(len(value) - 1, 0)
        return node
    return None
