"""CR — Constant Replacement.

The paper singles CR out: it "is only used if the high level description
includes a constant declaration", and turns out to be the most efficient
operator for stuck-at coverage.  CR here rewrites every constant
*reference*: integer literals get off-by-one and boundary values, named
constants additionally swap with the other declared constants, bit
literals flip, bit-string literals get corner/edge variants and enum
literals swap with their siblings.
"""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import SymbolKind
from repro.hdl.printer import expr_to_text
from repro.mutation.operators.base import MutationOperator, SiteContext


class CR(MutationOperator):
    name = "CR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if isinstance(expr, ast.IntLit):
            yield from _int_variants(expr.value, expr_to_text(expr), ())
            return
        if isinstance(expr, ast.BitLit):
            node = ast.BitLit(value=expr.value ^ 1)
            node.ty = ty.BIT
            yield node, f"'{expr.value}' -> '{node.value}'"
            return
        if isinstance(expr, ast.BoolLit):
            node = ast.BoolLit(value=not expr.value)
            node.ty = ty.BOOLEAN
            yield node, (
                f"{expr_to_text(expr)} -> {str(node.value).lower()}"
            )
            return
        if isinstance(expr, ast.BitStringLit):
            yield from _bitstring_variants(expr)
            return
        if isinstance(expr, ast.Name) and expr.symbol is not None:
            symbol = expr.symbol
            if symbol.kind is SymbolKind.ENUM_LITERAL:
                enum: ty.EnumType = symbol.ty
                for index, literal in enumerate(enum.literals):
                    if literal == symbol.name:
                        continue
                    node = ast.EnumLit(
                        type_name=enum.name, literal=literal, index=index
                    )
                    node.ty = enum
                    yield node, f"{symbol.name} -> {literal}"
                return
            if symbol.kind is SymbolKind.CONSTANT and isinstance(
                symbol.ty, ty.IntegerType
            ):
                siblings = tuple(
                    (c.init, c.name)
                    for c in ctx.int_constants
                    if c.name != symbol.name
                )
                yield from _int_variants(symbol.init, symbol.name, siblings)


def _int_variants(value: int, original: str, siblings):
    # Sibling declared constants first: swapping one named constant for
    # another is the canonical hardware CR fault.
    candidates: list[tuple[int, str]] = list(siblings)
    candidates.extend(
        [
            (value + 1, str(value + 1)),
            (value - 1, str(value - 1)),
            (0, "0"),
            (1, "1"),
        ]
    )
    seen = {value}
    for candidate, text in candidates:
        if candidate in seen or candidate < 0:
            continue
        seen.add(candidate)
        node = ast.IntLit(value=candidate)
        node.ty = ty.IntegerType(candidate, candidate)
        yield node, f"{original} -> {text}"


def _bitstring_variants(expr: ast.BitStringLit):
    bits = expr.bits
    width = len(bits)
    variants = {
        "0" * width,
        "1" * width,
        _flip(bits, 0),
        _flip(bits, width - 1),
    }
    variants.discard(bits)
    for variant in sorted(variants):
        node = ast.BitStringLit(bits=variant)
        node.ty = ty.BitVectorType(width - 1, 0)
        yield node, f'"{bits}" -> "{variant}"'


def _flip(bits: str, index: int) -> str:
    flipped = "1" if bits[index] == "0" else "0"
    return bits[:index] + flipped + bits[index + 1 :]
