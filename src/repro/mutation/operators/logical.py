"""LOR — Logical Operator Replacement."""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.hdl import ast
from repro.hdl.printer import expr_to_text
from repro.mutation.mutant import clone_expr
from repro.mutation.operators.base import MutationOperator, SiteContext

_LOGICAL_OPS = ("and", "or", "nand", "nor", "xor", "xnor")


class LOR(MutationOperator):
    """Replace one logical connective with each of the other five."""

    name = "LOR"

    def expr_mutations(self, expr: ast.Expr, ctx: SiteContext):
        if not isinstance(expr, ast.Binary) or expr.op not in _LOGICAL_OPS:
            return
        original = expr_to_text(expr)
        for op in _LOGICAL_OPS:
            if op == expr.op:
                continue
            replacement = dc_replace(
                expr,
                nid=ast.fresh_nid(),
                op=op,
                left=clone_expr(expr.left),
                right=clone_expr(expr.right),
            )
            yield replacement, f"{original} -> {expr_to_text(replacement)}"
