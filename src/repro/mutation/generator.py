"""Mutant generation: walk every process, apply every operator.

Order is deterministic (processes in elaboration order, statements
pre-order, expressions depth-first, operators in canonical order), so a
mutant id always denotes the same mutant for a given design — sampling
experiments rely on this.
"""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl.design import Design, Process
from repro.hdl.walker import stmt_rvalue_exprs, walk_expr, walk_stmts
from repro.mutation.mutant import Mutant
from repro.mutation.operators import SiteContext, all_operators, operators_named
from repro.mutation.operators.case_ops import CCR


def generate_mutants(
    design: Design, operator_names: list[str] | None = None
) -> list[Mutant]:
    """All first-order mutants of ``design``.

    ``operator_names`` restricts generation to a subset of operators
    (e.g. ``["LOR"]`` for the paper's per-operator study).
    """
    operators = (
        all_operators()
        if operator_names is None
        else operators_named(operator_names)
    )
    mutants: list[Mutant] = []
    seen: set[tuple[int, str, str]] = set()

    def emit(op_name: str, site: ast.Node, replacement: ast.Node,
             description: str, process: Process) -> None:
        key = (site.nid, op_name, description)
        if key in seen:
            return
        seen.add(key)
        mutants.append(
            Mutant(
                mid=len(mutants),
                operator=op_name,
                site_nid=site.nid,
                replacement=replacement,
                description=f"{process.label}: {description}",
                process_label=process.label,
            )
        )

    for process in design.processes:
        ctx = SiteContext(design, process)
        guard = process.guard_nids
        for stmt in walk_stmts(process.body):
            if stmt.nid in guard:
                continue
            for operator in operators:
                for replacement, description in operator.stmt_mutations(
                    stmt, ctx
                ):
                    emit(operator.name, stmt, replacement, description,
                         process)
                if isinstance(operator, CCR) and isinstance(stmt, ast.Case):
                    for choice, replacement, description in (
                        operator.choice_mutations(stmt, ctx)
                    ):
                        emit(operator.name, choice, replacement,
                             description, process)
            for top in stmt_rvalue_exprs(stmt):
                for expr in walk_expr(top):
                    if expr.nid in guard:
                        continue
                    for operator in operators:
                        for replacement, description in (
                            operator.expr_mutations(expr, ctx)
                        ):
                            emit(operator.name, expr, replacement,
                                 description, process)
    return mutants


def mutants_by_operator(mutants: list[Mutant]) -> dict[str, list[Mutant]]:
    """Group mutants per operator (insertion order preserved)."""
    groups: dict[str, list[Mutant]] = {}
    for mutant in mutants:
        groups.setdefault(mutant.operator, []).append(mutant)
    return groups
