"""Mutation score and budgeted equivalent-mutant analysis.

The paper's score: ``MS(P, TS) = K / (M - E)`` with M generated, K
killed and E equivalent mutants.  Equivalence being undecidable, E is
estimated with a fixed budget: a mutant no stimulus in an exhaustive
(small combinational input spaces) or seeded-random campaign kills is
classified *probably equivalent*.  The classification is deterministic
given (seed, budget) and is reported alongside every score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.design import Design
from repro.mutation.execution import MutationEngine
from repro.mutation.mutant import Mutant
from repro.util.rng import rng_stream


def mutation_score(total: int, killed: int, equivalents: int) -> float:
    """``K / (M - E)``, safely handling empty denominators."""
    alive_base = total - equivalents
    if alive_base <= 0:
        return 1.0
    return killed / alive_base


@dataclass
class MutationScore:
    """A mutation-score measurement over a mutant population."""

    total: int
    killed: int
    equivalents: int

    @property
    def score(self) -> float:
        return mutation_score(self.total, self.killed, self.equivalents)

    @property
    def percent(self) -> float:
        return 100.0 * self.score


@dataclass
class EquivalenceAnalysis:
    """Result of the budgeted equivalence campaign."""

    equivalent_mids: set[int]
    budget: int
    seed: int
    exhaustive: bool
    kill_cycle: dict[int, int | None] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.equivalent_mids)


#: Input widths up to this bound are enumerated exhaustively.
_EXHAUSTIVE_WIDTH = 10
#: Sequential circuits repeat the exhaustive set this many times in a
#: random order, so state-dependent kills get several chances.
_SEQ_EXHAUSTIVE_ROUNDS = 4


def equivalence_stimuli(
    design: Design, budget: int, seed: int
) -> tuple[list[int], bool]:
    """The stimulus set used to classify equivalence.

    Returns (packed stimuli, exhaustive?).
    """
    from repro.sim.testbench import StimulusEncoder

    width = StimulusEncoder(design).width
    rng = rng_stream(seed, design.name, "equivalence")
    if width <= _EXHAUSTIVE_WIDTH:
        space = list(range(1 << width))
        if design.is_sequential:
            # Sequential kills depend on state trajectories, not single
            # vectors: cover the per-cycle space repeatedly (shuffled)
            # until the full cycle budget is spent.  Not exhaustive in
            # the sequence sense, so it is not flagged as such.
            rounds = max(
                _SEQ_EXHAUSTIVE_ROUNDS, -(-budget // len(space))
            )
            stimuli: list[int] = []
            for _ in range(rounds):
                rng.shuffle(space)
                stimuli.extend(space)
            return stimuli[:max(budget, len(space))], False
        return space, True
    return [rng.getrandbits(width) for _ in range(budget)], False


def estimate_equivalents(
    design: Design,
    mutants: list[Mutant],
    budget: int = 512,
    seed: int = 20050307,
) -> EquivalenceAnalysis:
    """Classify mutants that the budgeted campaign never kills."""
    stimuli, exhaustive = equivalence_stimuli(design, budget, seed)
    engine = MutationEngine(design)
    reference = engine.reference_outputs(stimuli)
    survivors: set[int] = set()
    kill_cycle: dict[int, int | None] = {}
    for mutant in mutants:
        record = engine.run_mutant(mutant, stimuli, reference)
        kill_cycle[mutant.mid] = record.cycle
        if not record.killed:
            survivors.add(mutant.mid)
    return EquivalenceAnalysis(
        equivalent_mids=survivors,
        budget=len(stimuli),
        seed=seed,
        exhaustive=exhaustive,
        kill_cycle=kill_cycle,
    )
