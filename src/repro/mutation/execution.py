"""Mutant execution against stimuli: kills, matrices, survivors.

Strong mutation: a mutant is killed by a stimulus sequence when any
sampled output differs from the original at any cycle, or when its
execution raises a run-time error / fails to settle (observably
different behaviour).  Sequences always start from reset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MutantRuntimeError, OscillationError
from repro.hdl import ast
from repro.hdl.design import Design
from repro.mutation.mutant import Mutant
from repro.sim.interp import ExecContext
from repro.sim.testbench import StimulusEncoder, Testbench


class _SingleProcessCombRunner:
    """Fast path for one-process combinational designs.

    Such a process reads only input ports (the synthesizable-comb
    discipline), so one execution per vector replaces the delta-cycle
    scheduler: no per-vector signal-store rebuilds, no settle loops.
    """

    def __init__(self, design: Design,
                 patch: dict[int, ast.Node] | None, backend: str,
                 cache=None):
        self._design = design
        self._process = design.processes[0]
        if backend == "compiled":
            from repro.sim.compiler import CompiledExecutor

            self._executor = CompiledExecutor(design, patch, cache)
        else:
            from repro.sim.compiler import InterpretedExecutor

            self._executor = InterpretedExecutor(design, patch)
        self._defaults = {
            symbol.name: symbol.init
            for symbol in design.signal_like_symbols
        }
        self._variables = {
            var.name: var.init for var in self._process.variables
        }
        self._output_names = [p.name for p in design.output_ports]

    def outputs(self, stimulus: dict[str, object]) -> tuple:
        values = dict(self._defaults)
        values.update(stimulus)
        scheduled: dict[str, object] = {}

        def schedule(name: str, value) -> None:
            scheduled[name] = value

        def schedule_base(name: str):
            return scheduled.get(name, values[name])

        ctx = ExecContext(
            values.__getitem__, schedule, schedule_base,
            self._variables, frozenset(),
        )
        self._executor.exec_process(self._process, ctx)
        return tuple(
            scheduled.get(name, values[name]) for name in self._output_names
        )


def _can_fast_path(design: Design) -> bool:
    if design.is_sequential or len(design.processes) != 1:
        return False
    process = design.processes[0]
    # The fast path needs the process to read input ports only.
    return all(
        design.symbols[name].kind.name == "PORT_IN"
        for name in process.reads
    )


@dataclass(frozen=True)
class KillRecord:
    """Outcome of running one mutant against one stimulus sequence."""

    mid: int
    killed: bool
    cycle: int | None          # first differing cycle (0-based)
    reason: str                # "output-diff" | "runtime" | "oscillation" | "survived"


#: Surviving-mutant triage categories (the fault-classification
#: scheme): the test data never excited the mutated site at all, or it
#: did infect internal state but the infection never reached an
#: observed output, or the equivalence sweep flagged the mutant as a
#: candidate equivalent (no stimulus may be able to kill it).
NEVER_ACTIVATED = "never-activated"
PROPAGATION_BLOCKED = "propagation-blocked"
POSSIBLY_EQUIVALENT = "possibly-equivalent"
TRIAGE_CATEGORIES = (
    NEVER_ACTIVATED, PROPAGATION_BLOCKED, POSSIBLY_EQUIVALENT
)


class MutationEngine:
    """Runs mutants of one design against packed stimulus sequences."""

    def __init__(self, design: Design, max_delta: int = 256,
                 backend: str = "compiled"):
        self._design = design
        self._encoder = StimulusEncoder(design)
        self._max_delta = max_delta
        self._backend = backend
        self._fast = _can_fast_path(design)
        if backend == "compiled":
            from repro.sim.compiler import CompileCache

            self._cache = CompileCache()
        else:
            self._cache = None

    @property
    def design(self) -> Design:
        return self._design

    @property
    def encoder(self) -> StimulusEncoder:
        return self._encoder

    def decode_all(self, stimuli: list[int]) -> list[dict[str, object]]:
        return [self._encoder.decode(packed) for packed in stimuli]

    def reference_outputs(self, stimuli: list[int]) -> list[tuple]:
        """Original-design responses (no patch)."""
        if self._fast:
            runner = _SingleProcessCombRunner(
                self._design, None, self._backend, self._cache
            )
            return [
                runner.outputs(stimulus)
                for stimulus in self.decode_all(stimuli)
            ]
        bench = Testbench(
            self._design, max_delta=self._max_delta,
            backend=self._backend,
        )
        return bench.run_sequence(self.decode_all(stimuli))

    def _fresh_bench(self, patch) -> tuple[Testbench, tuple]:
        """A reset bench plus its pristine state checkpoint.

        Combinational vectors are independent by definition, but a
        mutant may read an internal signal and thereby smuggle state
        from one evaluation into the next when a bench is reused;
        restoring the pristine checkpoint before every vector keeps the
        per-vector semantics the fast path has (fresh evaluation), at a
        state-copy rather than bench-construction price.
        """
        bench = Testbench(
            self._design, patch, max_delta=self._max_delta,
            backend=self._backend,
        )
        bench.reset()
        return bench, bench.save_state()

    def run_mutant(
        self,
        mutant: Mutant,
        stimuli: list[int],
        reference: list[tuple] | None = None,
    ) -> KillRecord:
        """Run one mutant, stopping at the first observable difference.

        Sequential stimuli are one reset-started sequence; for
        combinational designs every vector is evaluated from fresh
        state.
        """
        if reference is None:
            reference = self.reference_outputs(stimuli)
        decoded = self.decode_all(stimuli)
        try:
            if self._fast:
                runner = _SingleProcessCombRunner(
                    self._design, mutant.patch(), self._backend, self._cache
                )
                for cycle, stimulus in enumerate(decoded):
                    if runner.outputs(stimulus) != reference[cycle]:
                        return KillRecord(
                            mutant.mid, True, cycle, "output-diff"
                        )
                return KillRecord(mutant.mid, False, None, "survived")
            bench, pristine = self._fresh_bench(mutant.patch())
            sequential = self._design.is_sequential
            for cycle, stimulus in enumerate(decoded):
                if not sequential:
                    bench.restore_state(pristine)
                outputs = bench.step(stimulus)
                if outputs != reference[cycle]:
                    return KillRecord(mutant.mid, True, cycle, "output-diff")
        except MutantRuntimeError:
            return KillRecord(mutant.mid, True, None, "runtime")
        except OscillationError:
            return KillRecord(mutant.mid, True, None, "oscillation")
        return KillRecord(mutant.mid, False, None, "survived")

    def run_all(
        self,
        mutants: list[Mutant],
        stimuli: list[int],
        reference: list[tuple] | None = None,
    ) -> list[KillRecord]:
        if reference is None:
            reference = self.reference_outputs(stimuli)
        return [
            self.run_mutant(mutant, stimuli, reference)
            for mutant in mutants
        ]

    def killed_mids(
        self,
        mutants: list[Mutant],
        stimuli: list[int],
        reference: list[tuple] | None = None,
    ) -> set[int]:
        return {
            record.mid
            for record in self.run_all(mutants, stimuli, reference)
            if record.killed
        }

    # -- surviving-mutant triage --------------------------------------------

    @staticmethod
    def _observable_state(state: tuple) -> tuple:
        """The comparable slice of a ``save_state`` checkpoint.

        Signal values plus process variables; the ``initialized`` flag
        is bench bookkeeping, identical on both machines by
        construction.
        """
        values, variables, _initialized = state
        return values, variables

    def reference_state_trace(self, stimuli: list[int]) -> list[tuple]:
        """Per-cycle internal-state checkpoints of the original design.

        Computed once per stimulus set and shared across every
        survivor's triage; combinational designs restore the pristine
        checkpoint before each vector, matching :meth:`run_mutant`.
        """
        decoded = self.decode_all(stimuli)
        bench, pristine = self._fresh_bench(None)
        sequential = self._design.is_sequential
        trace: list[tuple] = []
        for stimulus in decoded:
            if not sequential:
                bench.restore_state(pristine)
            bench.step(stimulus)
            trace.append(self._observable_state(bench.save_state()))
        return trace

    def triage_survivor(
        self,
        mutant: Mutant,
        stimuli: list[int],
        trace: list[tuple] | None = None,
    ) -> str:
        """Why ``stimuli`` failed to kill a surviving mutant.

        Steps the mutant in lockstep against the reference state trace
        and compares the *complete* machine state (every signal and
        process variable) after each cycle: a mutant whose state never
        deviates was :data:`NEVER_ACTIVATED` by the test data; one that
        deviated internally yet survived (its outputs matched) was
        activated but :data:`PROPAGATION_BLOCKED` on the way to an
        observed output.  The third category,
        :data:`POSSIBLY_EQUIVALENT`, is assigned by the caller from the
        equivalence analysis before ever running this sweep.
        """
        if trace is None:
            trace = self.reference_state_trace(stimuli)
        decoded = self.decode_all(stimuli)
        try:
            bench, pristine = self._fresh_bench(mutant.patch())
        except (MutantRuntimeError, OscillationError):
            # Initialization itself misbehaves — internal activation
            # without an output kill (or this would not be a survivor).
            return PROPAGATION_BLOCKED
        sequential = self._design.is_sequential
        for cycle, stimulus in enumerate(decoded):
            if not sequential:
                bench.restore_state(pristine)
            try:
                bench.step(stimulus)
            except (MutantRuntimeError, OscillationError):
                return PROPAGATION_BLOCKED
            state = self._observable_state(bench.save_state())
            if state != trace[cycle]:
                return PROPAGATION_BLOCKED
        return NEVER_ACTIVATED

    def triage_survivors(
        self, mutants: list[Mutant], stimuli: list[int]
    ) -> dict[int, str]:
        """Triage categories for a batch of survivors (shared trace)."""
        if not mutants:
            return {}
        trace = self.reference_state_trace(stimuli)
        return {
            mutant.mid: self.triage_survivor(mutant, stimuli, trace)
            for mutant in mutants
        }

    def comb_kill_sets(
        self,
        mutants: list[Mutant],
        vectors: list[int],
        reference: list[tuple] | None = None,
    ) -> dict[int, set[int]]:
        """For combinational designs: mid -> indexes of killing vectors.

        Every vector is independent (no state), so the whole matrix
        comes from one pass per mutant over the candidate list.
        """
        if reference is None:
            reference = self.reference_outputs(vectors)
        decoded = self.decode_all(vectors)
        matrix: dict[int, set[int]] = {}
        if self._fast:
            for mutant in mutants:
                kills: set[int] = set()
                runner = _SingleProcessCombRunner(
                    self._design, mutant.patch(), self._backend, self._cache
                )
                for index, stimulus in enumerate(decoded):
                    try:
                        if runner.outputs(stimulus) != reference[index]:
                            kills.add(index)
                    except (MutantRuntimeError, OscillationError):
                        kills.add(index)
                matrix[mutant.mid] = kills
            return matrix
        for mutant in mutants:
            kills: set[int] = set()
            try:
                bench, pristine = self._fresh_bench(mutant.patch())
            except (MutantRuntimeError, OscillationError):
                # Initialization itself misbehaves: observably different
                # on every vector.
                matrix[mutant.mid] = set(range(len(decoded)))
                continue
            for index, stimulus in enumerate(decoded):
                try:
                    bench.restore_state(pristine)
                    if bench.step(stimulus) != reference[index]:
                        kills.add(index)
                except (MutantRuntimeError, OscillationError):
                    # The erroring vector observably differs; a fresh
                    # bench continues the sweep for the remaining ones.
                    kills.add(index)
                    bench, pristine = self._fresh_bench(mutant.patch())
            matrix[mutant.mid] = kills
        return matrix
