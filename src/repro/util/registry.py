"""Generic named registry of classes.

Five subsystems register pluggable classes by name — sampling
strategies, simulation engines, fault models, search strategies and
grid schedulers — and until this helper existed each carried its own
hand-rolled copy of the same dict-plus-decorator code.
:class:`Registry` is the shared implementation; each subsystem keeps
its public module-level dict and wrapper functions (they are API), but
the semantics now live in one place:

* registering requires a non-empty ``name`` class attribute;
* re-registering the *same* class is a no-op, so module re-imports
  stay idempotent;
* registering a *different* class under a taken name raises the
  subsystem's error type — a silent overwrite would let a plug-in
  hijack a built-in by accident — unless ``replace=True`` is passed
  explicitly;
* lookups of unknown names raise the subsystem's error type with the
  sorted list of registered names, so typos fail helpfully.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError


class Registry:
    """A name -> class registry with guarded registration.

    ``kind`` is the human phrase used in error messages ("sampling
    strategy", "simulation engine", ...); ``error`` is the exception
    type raised on bad registrations and unknown lookups; ``entries``
    lets a subsystem hand in its public module-level dict so existing
    importers of that dict keep seeing every registration;
    ``on_replace`` is called with the name whenever an entry is
    overwritten (the engine registry uses it to drop the replaced
    backend's shared instance).
    """

    def __init__(
        self,
        kind: str,
        error: type[Exception] = ReproError,
        entries: dict[str, type] | None = None,
        on_replace: Callable[[str], None] | None = None,
    ):
        self.kind = kind
        self.error = error
        self.entries: dict[str, type] = (
            entries if entries is not None else {}
        )
        self._on_replace = on_replace

    # -- registration --------------------------------------------------------

    def register(self, cls: type | None = None, *, replace: bool = False):
        """Class decorator adding ``cls`` under ``cls.name``.

        Usable bare (``@registry.register``) or with the flag
        (``registry.register(cls, replace=True)`` /
        ``@registry.register(replace=True)``).
        """
        if cls is None:
            return lambda target: self.register(target, replace=replace)
        name = getattr(cls, "name", "")
        if not name:
            raise self.error(
                f"{cls.__name__} needs a non-empty 'name' to be registered"
            )
        current = self.entries.get(name)
        if current is cls:
            return cls  # re-import: keep the registration (and any caches)
        if current is not None and not replace:
            raise self.error(
                f"{self.kind} name {name!r} is already registered to "
                f"{current.__name__}; pass replace=True to overwrite"
            )
        self.entries[name] = cls
        if current is not None and self._on_replace is not None:
            self._on_replace(name)
        return cls

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> type:
        """The registered class called ``name``; loud on typos."""
        try:
            return self.entries[name]
        except KeyError:
            known = ", ".join(sorted(self.entries))
            raise self.error(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self.entries))

    def build(self, name: str, *args, **kwargs):
        """Instantiate the registered class called ``name``."""
        return self.get(name)(*args, **kwargs)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names())}>"
