"""Deterministic, labelled random number streams.

Experiments need many independent random sources (vector generation,
mutant sampling, equivalence budgets) that must not perturb each other
when one of them draws more numbers.  ``rng_stream(seed, *labels)``
derives an independent :class:`LabelledRandom` from a master seed and a
tuple of string labels, so the stream for ``("b01", "random-vectors")``
is stable no matter what other streams exist.

Hierarchical consumers (search strategies needing per-round or
per-individual streams) use :func:`spawn`: ``spawn(parent, "round", "3")``
derives a child stream whose labels extend the parent's, without
consuming any state from the parent — spawning is a pure function of
``(master seed, labels)``, so a strategy can spawn children in any
order, or not at all, without perturbing its sibling streams.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *labels: str) -> int:
    """Derive a 64-bit child seed from a master seed and labels.

    The derivation hashes the master seed together with the labels, so
    distinct label tuples give independent, reproducible child seeds.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("ascii"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(label.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class LabelledRandom(random.Random):
    """A :class:`random.Random` that remembers its derivation.

    Carrying ``(master_seed, labels)`` lets :func:`spawn` derive child
    streams purely from the labels, with no draws from the parent.
    """

    def __init__(self, master_seed: int, labels: tuple[str, ...]):
        self.master_seed = int(master_seed)
        self.labels = tuple(labels)
        super().__init__(derive_seed(self.master_seed, *self.labels))

    def __reduce__(self):
        # random.Random.__reduce__ rebuilds with no constructor
        # arguments, which a derived stream cannot satisfy — pickling
        # (and copy/deepcopy, which go through the same protocol) died
        # with a TypeError.  Rebuild from the derivation identity and
        # restore the Mersenne state, so a mid-stream generator
        # round-trips with its draw position intact.
        return (
            self.__class__,
            (self.master_seed, self.labels),
            self.getstate(),
        )


def rng_stream(master_seed: int, *labels: str) -> LabelledRandom:
    """Return a :class:`LabelledRandom` seeded from ``derive_seed``."""
    return LabelledRandom(master_seed, labels)


def spawn(parent: LabelledRandom | int, *labels: str) -> LabelledRandom:
    """A child stream whose labels extend the parent's.

    ``parent`` is a :class:`LabelledRandom` (from :func:`rng_stream` or
    a previous :func:`spawn`) or a bare master seed.  The child is
    derived from ``(parent.master_seed, *parent.labels, *labels)`` —
    the parent's generator state is untouched, so the draw history of
    the parent never influences (and is never influenced by) children.
    """
    if not labels:
        raise ValueError("spawn needs at least one child label")
    if isinstance(parent, LabelledRandom):
        return LabelledRandom(
            parent.master_seed, parent.labels + tuple(labels)
        )
    if isinstance(parent, int):
        return LabelledRandom(parent, tuple(labels))
    raise TypeError(
        "spawn parent must be a LabelledRandom or a master seed, got "
        f"{type(parent).__name__}"
    )
