"""Deterministic, labelled random number streams.

Experiments need many independent random sources (vector generation,
mutant sampling, equivalence budgets) that must not perturb each other
when one of them draws more numbers.  ``rng_stream(seed, *labels)``
derives an independent :class:`random.Random` from a master seed and a
tuple of string labels, so the stream for ``("b01", "random-vectors")``
is stable no matter what other streams exist.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *labels: str) -> int:
    """Derive a 64-bit child seed from a master seed and labels.

    The derivation hashes the master seed together with the labels, so
    distinct label tuples give independent, reproducible child seeds.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("ascii"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(label.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def rng_stream(master_seed: int, *labels: str) -> random.Random:
    """Return a :class:`random.Random` seeded from ``derive_seed``."""
    return random.Random(derive_seed(master_seed, *labels))
