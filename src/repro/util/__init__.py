"""Small shared utilities: deterministic RNG streams and text tables."""

from repro.util.rng import LabelledRandom, derive_seed, rng_stream, spawn
from repro.util.tables import render_table

__all__ = [
    "LabelledRandom", "derive_seed", "rng_stream", "render_table", "spawn",
]
