"""Small shared utilities: deterministic RNG streams and text tables."""

from repro.util.rng import derive_seed, rng_stream
from repro.util.tables import render_table

__all__ = ["derive_seed", "rng_stream", "render_table"]
