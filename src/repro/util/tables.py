"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned.  Floats are
    shown with two decimals, which matches the precision used in the
    paper's tables.
    """
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric(row[i]) for row in rows) if rows else False
        for i in range(columns)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_line(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(fmt_line(row))
    lines.append(separator)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(cell: object) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)
