"""Command-line interface: ``python -m repro <command>``.

Commands

* ``list``       — registered benchmark circuits
* ``show``       — stats of one circuit (mutants, gates, faults)
* ``synth``      — synthesize a circuit and print its ``.bench`` netlist
* ``mutants``    — list (a sample of) a circuit's mutants
* ``analyze``    — static netlist analysis of one circuit: structural
  lint (cycles, undriven/multi-driven nets, dead logic), SCOAP
  testability scores and an untestable-fault prune preview per model
* ``lint``       — AST lint of Python sources against the repo's
  determinism invariants (``repro lint src`` runs in CI)
* ``engines``    — registered netlist-simulation backends
* ``fault-models`` — registered fault models (stuck-at, transition, seu)
* ``strategies`` — registered search and sampling strategies
* ``grid``       — registered grid schedulers / job-store inspection
* ``replay``     — re-execute a stored kill witness from a campaign
  result JSON (``repro replay result.json <mutant-id>``), or explain
  why a mutant has none (survivor triage)
* ``testgen``    — generate mutation-adequate validation data
* ``run``        — execute a full campaign from a JSON config file
  (``--resume`` continues a killed run: finished circuits from the
  result cache, finished grid work units from the job store;
  ``--grid remote --coordinator URL`` dispatches units to a
  coordinator's attached workers)
* ``serve``      — run a repro.net coordinator: grid unit broker plus
  the campaign-as-a-service front door
* ``worker``     — attach a worker daemon to a coordinator
* ``submit``     — submit a campaign config to a coordinator and
  stream its event envelopes back as JSON lines
* ``trace``      — top-k self-time summary (or ``--validate`` schema
  check) of a Chrome trace-event JSON written by ``repro run --trace``
* ``top``        — refreshing live view of a coordinator's
  ``GET /metrics`` telemetry (queue depth, worker throughput,
  per-campaign progress)
* ``status``     — one-shot campaign progress from a coordinator URL
  or an on-disk event journal under a ``serve --cache-dir``
* ``bench-diff`` — compare benchmark trajectory runs and flag
  regressions (the CI perf gate)
* ``table1``     — regenerate the paper's Table 1
* ``table2``     — regenerate the paper's Table 2
* ``atpg-reuse`` — the §1 validation-reuse experiment
* ``ablation``   — sampling-rate / weight-scheme ablations
* ``search-compare`` — search strategies at an equal candidate budget

Every subcommand is a thin consumer of the campaign pipeline: the
shared ``--seed`` / budget options build one
:class:`repro.campaign.CampaignConfig` (including ``--engine`` /
``--fault-model`` / ``--fault-lanes`` simulation selection),
table-producing commands
accept ``--jobs`` (process-parallel over whole circuits), ``--grid`` /
``--grid-workers`` / ``--grid-shard`` (sharded work-unit execution
*within* each circuit), ``--cache-dir`` (on-disk result cache, plus
the grid job store) with ``--cache-max-entries`` (LRU bound) and
``--json`` (archive the result), and ``repro run`` replays a campaign
described entirely by a JSON config file.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.config import (
    DEFAULT_CIRCUITS,
    DEFAULT_OPERATORS,
    CampaignConfig,
)


def _add_budget_args(parser: argparse.ArgumentParser,
                     search: bool = True) -> None:
    parser.add_argument("--seed", type=int, default=20050301,
                        help="master experiment seed")
    parser.add_argument("--testgen-seed", type=int, default=7,
                        help="mutation-adequate generator seed")
    parser.add_argument("--sampling-seed", type=int, default=13,
                        help="mutant sampling seed")
    parser.add_argument("--random-budget", type=int, default=None,
                        help="random baseline length (both styles)")
    parser.add_argument("--equivalence-budget", type=int, default=256,
                        help="stimuli for equivalent-mutant classification")
    parser.add_argument("--max-vectors", type=int, default=256,
                        help="cap on generated validation vectors")
    _add_engine_args(parser)
    if search:
        _add_search_args(parser)


def _engine_choices() -> tuple[str, ...]:
    from repro.engine import engine_names

    return engine_names()


def _search_choices() -> tuple[str, ...]:
    from repro.search import search_strategy_names

    return search_strategy_names()


def _add_search_args(parser: argparse.ArgumentParser) -> None:
    from repro.search import DEFAULT_SEARCH

    parser.add_argument("--search", default=DEFAULT_SEARCH,
                        choices=_search_choices(),
                        help="candidate-vector search strategy "
                             f"(default: {DEFAULT_SEARCH})")
    parser.add_argument("--search-budget", type=int, default=None,
                        help="total candidate cap per target "
                             "(default: uncapped)")


def _fault_model_choices() -> tuple[str, ...]:
    from repro.fault.models import fault_model_names

    return fault_model_names()


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    from repro.engine import DEFAULT_ENGINE
    from repro.fault.models import DEFAULT_FAULT_MODEL

    parser.add_argument("--engine", default=DEFAULT_ENGINE,
                        choices=_engine_choices(),
                        help="netlist-simulation backend "
                             f"(default: {DEFAULT_ENGINE})")
    parser.add_argument("--fault-model", default=DEFAULT_FAULT_MODEL,
                        choices=_fault_model_choices(),
                        help="fault model for validation and NLFCE "
                             f"(default: {DEFAULT_FAULT_MODEL})")
    parser.add_argument("--fault-lanes", type=int, default=256,
                        help="fault-parallel chunk width for sequential "
                             "fault simulation (default: 256)")
    parser.add_argument("--prune-untestable", action="store_true",
                        help="skip simulating provably untestable faults "
                             "(repro.analyze; payloads stay bit-identical)")
    parser.add_argument("--static-prescreen", action="store_true",
                        help="tag mutants in provably dead logic as "
                             "possibly-equivalent before simulation")


def _scheduler_choices() -> tuple[str, ...]:
    from repro.grid import scheduler_names

    return scheduler_names()


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes over whole "
                             "circuits (per-circuit parallelism; see "
                             "--grid for within-circuit sharding)")
    parser.add_argument("--grid", default=None,
                        choices=_scheduler_choices(),
                        help="shard work within each circuit on this "
                             "grid scheduler (supersedes --jobs)")
    parser.add_argument("--grid-workers", type=int, default=1,
                        help="workers for the grid scheduler "
                             "(default: 1)")
    parser.add_argument("--grid-shard", type=int, default=0,
                        help="items (faults/mutants) per grid work "
                             "unit (default: 0 = auto)")
    parser.add_argument("--coordinator", default=None, metavar="URL",
                        help="coordinator base URL for --grid remote "
                             "(http://host:port)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache "
                             "and the grid job store")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        help="LRU bound on result-cache entries "
                             "(default: unlimited)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the result as JSON to PATH")
    parser.add_argument("--progress", action="store_true",
                        help="report per-stage progress on stderr")


def _campaign_config(args, **overrides) -> CampaignConfig:
    """One CampaignConfig from the shared CLI options.

    Subcommands expose only the options that affect them; anything a
    parser does not declare keeps the campaign default.
    """
    values = dict(
        seed=getattr(args, "seed", CampaignConfig.seed),
        testgen_seed=getattr(args, "testgen_seed", CampaignConfig.testgen_seed),
        sampling_seed=getattr(
            args, "sampling_seed", CampaignConfig.sampling_seed
        ),
        equivalence_budget=getattr(
            args, "equivalence_budget", CampaignConfig.equivalence_budget
        ),
        max_vectors=getattr(args, "max_vectors", CampaignConfig.max_vectors),
        engine=getattr(args, "engine", None) or CampaignConfig.engine,
        fault_model=(
            getattr(args, "fault_model", None) or CampaignConfig.fault_model
        ),
        fault_lanes=getattr(
            args, "fault_lanes", CampaignConfig.fault_lanes
        ),
        prune_untestable=getattr(
            args, "prune_untestable", CampaignConfig.prune_untestable
        ),
        static_prescreen=getattr(
            args, "static_prescreen", CampaignConfig.static_prescreen
        ),
        search=getattr(args, "search", None) or CampaignConfig.search,
        search_budget=getattr(
            args, "search_budget", CampaignConfig.search_budget
        ),
        jobs=getattr(args, "jobs", CampaignConfig.jobs),
        grid=getattr(args, "grid", CampaignConfig.grid),
        grid_workers=getattr(
            args, "grid_workers", CampaignConfig.grid_workers
        ),
        grid_shard=getattr(args, "grid_shard", CampaignConfig.grid_shard),
        coordinator=getattr(
            args, "coordinator", CampaignConfig.coordinator
        ),
        cache_dir=getattr(args, "cache_dir", CampaignConfig.cache_dir),
        cache_max_entries=getattr(
            args, "cache_max_entries", CampaignConfig.cache_max_entries
        ),
    )
    if getattr(args, "random_budget", None) is not None:
        values["random_budget_comb"] = args.random_budget
        values["random_budget_seq"] = args.random_budget
    values.update(overrides)
    return CampaignConfig(**values)


def _events(args):
    from repro.campaign.events import CampaignEvents, ProgressEvents

    if getattr(args, "progress", False):
        return ProgressEvents()
    return CampaignEvents()


def _archive(args, produce_json) -> None:
    """Write ``produce_json()`` to ``--json PATH`` when requested.

    Takes a producer so the (potentially large) serialization only
    happens when the user asked for an archive.
    """
    if getattr(args, "json", None):
        from repro.experiments.report import write_json

        write_json(args.json, produce_json())


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    try:
        return _main(argv)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Mutation sampling for structural test data generation "
            "(Scholive et al., DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark circuits")

    show = sub.add_parser("show", help="circuit statistics")
    show.add_argument("circuit")

    synth = sub.add_parser("synth", help="print the synthesized .bench")
    synth.add_argument("circuit")

    mutants = sub.add_parser("mutants", help="list mutants")
    mutants.add_argument("circuit")
    mutants.add_argument("--operator", default=None)
    mutants.add_argument("--limit", type=int, default=20)

    analyze = sub.add_parser(
        "analyze",
        help="static netlist analysis: structure lint, testability, "
             "untestable-fault preview",
    )
    analyze.add_argument("circuit")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON")

    lint = sub.add_parser(
        "lint", help="lint Python sources for repo determinism invariants"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule subset (default: all)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON")

    sub.add_parser("engines", help="list netlist-simulation backends")

    sub.add_parser("fault-models", help="list registered fault models")

    sub.add_parser(
        "strategies", help="list search and sampling strategies"
    )

    grid = sub.add_parser(
        "grid",
        help="list grid schedulers, or inspect a job store",
    )
    grid.add_argument("--store", default=None, metavar="DIR",
                      help="cache directory whose grid job store(s) to "
                           "inspect")
    grid.add_argument("--config", default=None, metavar="PATH",
                      help="campaign config JSON narrowing --store to "
                           "one fingerprint")

    replay = sub.add_parser(
        "replay",
        help="re-execute a stored kill witness from a campaign result",
    )
    replay.add_argument("result", help="campaign result JSON "
                                       "(from --json PATH)")
    replay.add_argument("mid", type=int, help="mutant id to replay")
    replay.add_argument("--circuit", default=None,
                        help="restrict the witness search to one circuit")
    replay.add_argument("--strategy", default=None,
                        help="restrict the witness search to one "
                             "strategy row")

    testgen = sub.add_parser(
        "testgen", help="generate mutation-adequate validation data"
    )
    testgen.add_argument("circuit")
    testgen.add_argument("--operator", default=None)
    # Only the knobs that affect this subcommand; --seed stays the
    # generator seed it has always been here (alias of --testgen-seed).
    testgen.add_argument("--seed", "--testgen-seed", dest="testgen_seed",
                         type=int, default=7,
                         help="mutation-adequate generator seed")
    testgen.add_argument("--max-vectors", type=int, default=256,
                         help="cap on generated validation vectors")
    _add_search_args(testgen)

    run = sub.add_parser(
        "run", help="execute a campaign from a JSON config file"
    )
    run.add_argument("config", help="path to a CampaignConfig JSON file")
    run.add_argument("--circuits", nargs="*", default=None,
                     help="override the config's circuit list")
    run.add_argument("--jobs", type=int, default=None,
                     help="override the config's worker count")
    run.add_argument("--grid", default=None, choices=_scheduler_choices(),
                     help="override the config's grid scheduler")
    run.add_argument("--grid-workers", type=int, default=None,
                     help="override the config's grid worker count")
    run.add_argument("--grid-shard", type=int, default=None,
                     help="override the config's grid shard size")
    run.add_argument("--coordinator", default=None, metavar="URL",
                     help="coordinator base URL for --grid remote "
                          "(http://host:port)")
    run.add_argument("--resume", action="store_true",
                     help="resume a killed run (needs --cache-dir): "
                          "finished circuits come from the result "
                          "cache, and with a grid scheduler finished "
                          "work units come from the job store")
    run.add_argument("--engine", default=None, choices=_engine_choices(),
                     help="override the config's simulation backend")
    run.add_argument("--fault-model", default=None,
                     choices=_fault_model_choices(),
                     help="override the config's fault model")
    run.add_argument("--fault-lanes", type=int, default=None,
                     help="override the config's fault-parallel "
                          "chunk width")
    run.add_argument("--cache-dir", default=None,
                     help="override the config's result cache directory")
    run.add_argument("--cache-max-entries", type=int, default=None,
                     help="override the config's cache LRU bound")
    run.add_argument("--search", default=None, choices=_search_choices(),
                     help="override the config's search strategy")
    run.add_argument("--search-budget", type=int, default=None,
                     help="override the config's candidate cap")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the result as JSON to PATH")
    run.add_argument("--progress", action="store_true",
                     help="report per-stage progress on stderr")
    run.add_argument("--telemetry", action="store_true",
                     help="collect execution metrics and print a "
                          "summary on stderr (never affects results "
                          "or fingerprints)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON of the run "
                          "(open in Perfetto / chrome://tracing, or "
                          "summarize with 'repro trace PATH')")

    serve = sub.add_parser(
        "serve",
        help="run a repro.net coordinator (unit broker + campaign "
             "service)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; use "
                            "0.0.0.0 to accept remote workers)")
    serve.add_argument("--port", type=int, default=8752,
                       help="bind port (default: 8752; 0 = ephemeral)")
    serve.add_argument("--cache-dir", default=None,
                       help="shared result-cache / job-store directory; "
                            "completed units are persisted here so "
                            "'repro run --resume' survives a "
                            "coordinator crash")
    serve.add_argument("--lease-timeout", type=float, default=None,
                       help="seconds a worker may stay silent before "
                            "its units are reassigned (default: 60)")
    serve.add_argument("--no-service", action="store_true",
                       help="plain unit broker: refuse campaign "
                            "submissions")
    serve.add_argument("--verbose", action="store_true",
                       help="also log every HTTP request")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="stitch the span buffers workers attach to "
                            "their completions into one Chrome trace, "
                            "written to PATH on shutdown")

    worker = sub.add_parser(
        "worker", help="attach a worker daemon to a coordinator"
    )
    worker.add_argument("coordinator",
                        help="coordinator base URL (http://host:port)")
    worker.add_argument("--name", default=None,
                        help="worker name shown in coordinator logs "
                             "(default: hostname-pid)")
    worker.add_argument("--max-units", type=int, default=None,
                        help="exit after completing this many units")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many consecutive idle "
                             "seconds")

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a coordinator and stream its "
             "events",
    )
    submit.add_argument("coordinator",
                        help="coordinator base URL (http://host:port)")
    submit.add_argument("config",
                        help="path to a CampaignConfig JSON file")
    submit.add_argument("--circuits", nargs="*", default=None,
                        help="override the config's circuit list")
    submit.add_argument("--since", type=int, default=0,
                        help="resume the event stream from this "
                             "sequence number")
    submit.add_argument("--poll", type=float, default=0.5,
                        help="event poll interval in seconds "
                             "(default: 0.5)")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress the event stream; print only "
                             "the final summary")
    submit.add_argument("--json", default=None, metavar="PATH",
                        help="also write the result as JSON to PATH")

    trace = sub.add_parser(
        "trace",
        help="summarize a trace file from 'repro run --trace'",
    )
    trace.add_argument("trace", help="Chrome trace-event JSON file")
    trace.add_argument("--top", type=int, default=15,
                       help="spans to show, ranked by self time "
                            "(default: 15)")
    trace.add_argument("--validate", action="store_true",
                       help="check the trace-event schema instead of "
                            "summarizing (exit 1 on violations)")

    top = sub.add_parser(
        "top",
        help="live view of a coordinator's /metrics telemetry",
    )
    top.add_argument("coordinator",
                     help="coordinator base URL (http://host:port)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen "
                          "clearing; scripts and CI)")

    status = sub.add_parser(
        "status",
        help="campaign progress from a coordinator or an event journal",
    )
    status.add_argument("target",
                        help="coordinator base URL (http://host:port), "
                             "a journal directory, a campaign directory "
                             "holding one, or a serve --cache-dir root")
    status.add_argument("--campaign", default=None,
                        help="restrict to one campaign id")
    status.add_argument("--json", action="store_true",
                        help="emit the progress snapshots as JSON")

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare benchmark trajectory runs and flag regressions",
    )
    bench_diff.add_argument("fresh",
                            help="trajectory JSON holding the candidate "
                                 "run (benchmarks/BENCH_*.json)")
    bench_diff.add_argument("baseline", nargs="?", default=None,
                            help="baseline trajectory JSON (default: "
                                 "the run before the latest in FRESH)")
    bench_diff.add_argument("--tolerance", type=float, default=None,
                            help="allowed fractional degradation before "
                                 "a metric regresses (default: 0.5)")

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--circuits", nargs="*", default=list(DEFAULT_CIRCUITS))
    _add_budget_args(table1)
    _add_exec_args(table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--circuits", nargs="*", default=list(DEFAULT_CIRCUITS))
    table2.add_argument("--fraction", type=float, default=0.10)
    table2.add_argument("--no-calibrate", action="store_true")
    _add_budget_args(table2)
    _add_exec_args(table2)

    reuse = sub.add_parser("atpg-reuse", help="validation-reuse experiment")
    reuse.add_argument("--circuits", nargs="*",
                       default=["c17", "c432", "c499"])
    reuse.add_argument("--json", default=None, metavar="PATH",
                       help="also write the rows as JSON to PATH")
    _add_budget_args(reuse)

    ablation = sub.add_parser("ablation", help="ablation studies")
    ablation.add_argument("kind", choices=["rate", "weights"])
    ablation.add_argument("--circuit", default="b01")
    ablation.add_argument("--json", default=None, metavar="PATH",
                          help="also write the rows as JSON to PATH")
    _add_budget_args(ablation)

    compare = sub.add_parser(
        "search-compare",
        help="compare search strategies at an equal candidate budget",
    )
    compare.add_argument("--circuits", nargs="*", default=None,
                         help="circuits to compare on (default: c432 b01)")
    compare.add_argument("--strategies", nargs="*", default=None,
                         choices=_search_choices(),
                         help="strategies to compare (default: all)")
    compare.add_argument("--budget", type=int, default=512,
                         help="candidate budget per strategy run")
    compare.add_argument("--json", default=None, metavar="PATH",
                         help="also write the rows as JSON to PATH")
    # The strategy is swept here, so the shared --search knobs are out;
    # an unset seed resolves to the shipped comparison's
    # DEFAULT_SEARCH_SEED in _cmd_search_compare.
    _add_budget_args(compare, search=False)
    compare.set_defaults(testgen_seed=None)

    args = parser.parse_args(argv)
    command = args.command

    if command == "list":
        from repro.circuits import circuit_names, get_circuit

        for name in circuit_names():
            info = get_circuit(name)
            style = "seq " if info.sequential else "comb"
            print(f"{name:6s} [{info.family:7s} {style}] {info.description}")
        return 0

    if command == "show":
        return _cmd_show(args)
    if command == "synth":
        from repro.circuits import load_circuit
        from repro.netlist.bench import write_bench
        from repro.synth import synthesize

        print(write_bench(synthesize(load_circuit(args.circuit))), end="")
        return 0
    if command == "mutants":
        return _cmd_mutants(args)
    if command == "analyze":
        return _cmd_analyze(args)
    if command == "lint":
        return _cmd_lint(args)
    if command == "engines":
        return _cmd_engines()
    if command == "fault-models":
        return _cmd_fault_models()
    if command == "strategies":
        return _cmd_strategies()
    if command == "grid":
        return _cmd_grid(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "testgen":
        return _cmd_testgen(args)
    if command == "run":
        return _cmd_run(args)
    if command == "serve":
        return _cmd_serve(args)
    if command == "worker":
        return _cmd_worker(args)
    if command == "submit":
        return _cmd_submit(args)
    if command == "trace":
        return _cmd_trace(args)
    if command == "top":
        return _cmd_top(args)
    if command == "status":
        return _cmd_status(args)
    if command == "bench-diff":
        return _cmd_bench_diff(args)
    if command == "table1":
        from repro.campaign.runner import Campaign
        from repro.experiments.report import table1_text

        config = _campaign_config(
            args, operators=DEFAULT_OPERATORS, strategies=(),
        )
        result = Campaign(config, _events(args)).run(tuple(args.circuits))
        print(table1_text(result.table1()))
        _archive(args, result.to_json)
        return 0
    if command == "table2":
        from repro.campaign.runner import Campaign
        from repro.experiments.report import table2_text

        calibrate = not args.no_calibrate
        config = _campaign_config(
            args,
            operators=DEFAULT_OPERATORS if calibrate else (),
            strategies=("random", "test-oriented"),
            fraction=args.fraction,
            weight_scheme="calibrated" if calibrate else "paper-ranks",
        )
        result = Campaign(config, _events(args)).run(tuple(args.circuits))
        print(table2_text(result.table2()))
        _archive(args, result.to_json)
        return 0
    if command == "atpg-reuse":
        from repro.experiments.atpg_reuse import run_atpg_reuse
        from repro.experiments.report import rows_text, to_json

        config = _campaign_config(args)
        rows = run_atpg_reuse(
            circuits=tuple(args.circuits), config=config.lab_config(),
            testgen_seed=config.testgen_seed,
            max_vectors=config.max_vectors,
        )
        print(
            rows_text(
                rows,
                ["Circuit", "Mode", "Preload", "Cov0%", "Faults",
                 "Decisions", "Backtracks", "ATPG vecs", "Final%"],
                ["circuit", "mode", "preload_vectors",
                 "preload_coverage_pct", "targeted_faults", "decisions",
                 "backtracks", "atpg_vectors", "final_coverage_pct"],
                "Validation-data reuse vs deterministic-only ATPG",
            )
        )
        _archive(args, lambda: to_json(rows))
        return 0
    if command == "ablation":
        from repro.experiments.ablation import (
            run_rate_ablation,
            run_weight_ablation,
        )
        from repro.experiments.report import rows_text, to_json

        config = _campaign_config(args)
        runner = run_rate_ablation if args.kind == "rate" else (
            run_weight_ablation
        )
        rows = runner(
            circuit=args.circuit, config=config.lab_config(),
            sampling_seed=config.sampling_seed,
            testgen_seed=config.testgen_seed,
            max_vectors=config.max_vectors,
        )
        print(
            rows_text(
                rows,
                ["Circuit", "Variant", "Fraction", "Selected", "MS%",
                 "NLFCE"],
                ["circuit", "variant", "fraction", "selected", "ms_pct",
                 "nlfce"],
                f"Ablation: {args.kind}",
            )
        )
        _archive(args, lambda: to_json(rows))
        return 0
    if command == "search-compare":
        return _cmd_search_compare(args)
    parser.error(f"unknown command {command!r}")
    return 2


def _cmd_show(args) -> int:
    from repro.circuits import get_circuit, load_circuit
    from repro.fault import collapse_faults, generate_faults
    from repro.mutation import generate_mutants, mutants_by_operator
    from repro.synth import synthesize

    info = get_circuit(args.circuit)
    design = load_circuit(args.circuit)
    netlist = synthesize(design)
    mutants = generate_mutants(design)
    groups = mutants_by_operator(mutants)
    print(f"{info.name}: {info.description}")
    print(f"  family      : {info.family}")
    print(f"  style       : {'sequential' if info.sequential else 'combinational'}")
    stats = netlist.stats()
    print(f"  gates/dffs  : {stats['gates']} / {stats['dffs']}")
    print(f"  logic depth : {stats['depth']}")
    print(f"  faults      : {len(generate_faults(netlist))} uncollapsed, "
          f"{len(collapse_faults(netlist))} collapsed")
    print(f"  mutants     : {len(mutants)} "
          f"({', '.join(f'{op}:{len(ms)}' for op, ms in sorted(groups.items()))})")
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.analyze import analyze_testability, lint_netlist
    from repro.analyze.prune import split_untestable
    from repro.circuits import load_circuit
    from repro.fault.models import fault_model_names, get_fault_model
    from repro.synth import synthesize

    netlist = synthesize(load_circuit(args.circuit))
    analysis = analyze_testability(netlist)
    findings = lint_netlist(netlist)
    prune: dict[str, dict] = {}
    for model_name in fault_model_names():
        model = get_fault_model(model_name)()
        faults = model.collapse(netlist)
        _, pruned = split_untestable(netlist, faults, analysis)
        reasons: dict[str, int] = {}
        for _, reason in pruned:
            reasons[reason] = reasons.get(reason, 0) + 1
        prune[model_name] = {
            "faults": len(faults),
            "pruned": len(pruned),
            "reasons": dict(sorted(reasons.items())),
        }
    report = {
        "circuit": args.circuit,
        "stats": netlist.stats(),
        "testability": analysis.summary(),
        "findings": [finding.to_dict() for finding in findings],
        "prune": prune,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    stats = report["stats"]
    print(f"{args.circuit}: {stats['gates']} gates, {stats['dffs']} dffs, "
          f"{stats['nets']} nets")
    t = report["testability"]
    print(f"  constants     : {len(t['constant_nets'])} nets proven "
          f"constant")
    print(f"  unobservable  : {len(t['unobservable_nets'])} nets with no "
          f"path to an output")
    print(f"  scoap         : mean difficulty {t['mean_difficulty']}, "
          f"max {t['max_difficulty']}")
    for model_name, row in prune.items():
        why = ", ".join(f"{k}:{v}" for k, v in row["reasons"].items())
        print(f"  prune[{model_name:10s}]: {row['pruned']}/{row['faults']} "
              f"provably untestable{f' ({why})' if why else ''}")
    if findings:
        print(f"  {len(findings)} structural finding(s):")
        for finding in findings:
            print(f"    [{finding.check}] {finding.net}: {finding.detail}")
    else:
        print("  structure     : clean")
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.analyze.lint import lint_paths, rule_names

    rules: tuple[str, ...] = ()
    if args.rules:
        rules = tuple(
            name.strip() for name in args.rules.split(",") if name.strip()
        )
        for name in rules:
            if name not in rule_names():
                from repro.errors import AnalyzeError

                raise AnalyzeError(
                    f"unknown lint rule {name!r} "
                    f"(registered: {', '.join(rule_names())})"
                )
    findings = lint_paths(args.paths, rules)
    if args.json:
        print(json.dumps(
            [finding.to_dict() for finding in findings],
            indent=2, sort_keys=True,
        ))
    else:
        for finding in findings:
            print(finding)
        label = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {label}")
    return 1 if findings else 0


def _cmd_engines() -> int:
    from repro.engine import DEFAULT_ENGINE, engine_names, get_engine

    for name in engine_names():
        cls = get_engine(name)
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        marker = "*" if name == DEFAULT_ENGINE else " "
        print(f"{marker} {name:10s} {summary}")
    print("(* = default backend)")
    return 0


def _cmd_fault_models() -> int:
    from repro.fault.models import (
        DEFAULT_FAULT_MODEL,
        fault_model_names,
        get_fault_model,
    )

    for name in fault_model_names():
        cls = get_fault_model(name)
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        marker = "*" if name == DEFAULT_FAULT_MODEL else " "
        print(f"{marker} {name:10s} {summary}")
    print("(* = default fault model)")
    return 0


def _cmd_replay(args) -> int:
    """Re-execute one stored kill witness and verify it still kills."""
    from pathlib import Path

    from repro.campaign.result import CampaignResult
    from repro.circuits import load_circuit
    from repro.errors import ConfigError
    from repro.mutation import MutationEngine, generate_mutants

    try:
        text = Path(args.result).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read campaign result: {exc}") from exc
    result = CampaignResult.from_json(text)

    mid = args.mid
    key = str(mid)
    for circuit in result.circuits:
        if args.circuit is not None and circuit.circuit != args.circuit:
            continue
        for row in circuit.strategies:
            if args.strategy is not None and row.strategy != args.strategy:
                continue
            label = f"{circuit.circuit}/{row.strategy}"
            witness = row.witnesses.get(key)
            if witness is None:
                # No witness: explain why from the triage records.
                category = next(
                    (
                        cat for cat, mids in (row.triage or {}).items()
                        if mid in mids
                    ),
                    None,
                )
                if category is not None:
                    print(
                        f"{label}: mutant {mid} survived — "
                        f"triaged as {category}"
                    )
                    return 1
                continue
            cycle, reason = witness[0], witness[1]
            design = load_circuit(circuit.circuit)
            mutants = generate_mutants(design)
            if not 0 <= mid < len(mutants):
                print(
                    f"{label}: witness for mutant {mid} found, but the "
                    f"id is outside the population "
                    f"(0..{len(mutants) - 1})"
                )
                return 2
            record = MutationEngine(design).run_mutant(
                mutants[mid], list(row.vectors)
            )
            print(
                f"{label}: mutant {mid} ({mutants[mid]})\n"
                f"  stored  : killed at cycle {cycle} ({reason})\n"
                f"  replayed: "
                + (
                    f"killed at cycle {record.cycle} ({record.reason})"
                    if record.killed
                    else "NOT killed"
                )
            )
            if (
                record.killed
                and record.cycle == cycle
                and record.reason == reason
            ):
                print("  verdict : witness verified")
                return 0
            print("  verdict : MISMATCH with the stored witness")
            return 2
    scope = ""
    if args.circuit or args.strategy:
        scope = (
            f" (searched circuit={args.circuit or 'any'}, "
            f"strategy={args.strategy or 'any'})"
        )
    print(f"no kill witness for mutant {mid} in {args.result}{scope}")
    return 1


def _cmd_strategies() -> int:
    from repro.sampling import STRATEGIES
    from repro.search import DEFAULT_SEARCH, SEARCH_STRATEGIES

    def summary(cls) -> str:
        doc = (cls.__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""

    print("search strategies (candidate-vector proposal, --search):")
    for name in sorted(SEARCH_STRATEGIES):
        marker = "*" if name == DEFAULT_SEARCH else " "
        print(f"{marker} {name:14s} {summary(SEARCH_STRATEGIES[name])}")
    print("sampling strategies (mutant selection, campaign 'strategies'):")
    for name in sorted(STRATEGIES):
        print(f"  {name:14s} {summary(STRATEGIES[name])}")
    print("(* = default search strategy)")
    return 0


def _cmd_grid(args) -> int:
    from repro.grid import DEFAULT_SCHEDULER, SCHEDULERS, scheduler_names

    if args.store is None:
        for name in scheduler_names():
            cls = SCHEDULERS[name]
            doc = (cls.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            marker = "*" if name == DEFAULT_SCHEDULER else " "
            print(f"{marker} {name:10s} {summary}")
        print("(* = reference scheduler; all are bit-identical to it)")
        return 0
    return _cmd_grid_store(args)


def _cmd_grid_store(args) -> int:
    """List stored work units under a cache directory."""
    from pathlib import Path

    from repro.grid import JobStore, STORE_VERSION

    base = Path(args.store)
    if args.config is not None:
        config = CampaignConfig.from_file(args.config)
        directories = [
            base / f"grid-{config.fingerprint()}-v{STORE_VERSION}"
        ]
    else:
        directories = sorted(base.glob("grid-*"))
    found = False
    for directory in directories:
        if not directory.is_dir():
            continue
        # (circuit, stage, key) -> [done, planned, compute seconds]
        groups: dict[tuple[str, str, str], list] = {}
        for unit in JobStore.read_directory(directory):
            try:
                key = (unit["circuit"], unit["stage"], unit["key"])
                total = int(unit["total"])
            except (TypeError, ValueError, KeyError):
                continue
            row = groups.setdefault(key, [0, total, 0.0])
            row[0] += 1
            row[2] += float(unit.get("seconds") or 0.0)
        if not groups:
            continue
        found = True
        print(f"{directory.name}:")
        for (circuit, stage, key), (done, total, secs) in sorted(
            groups.items()
        ):
            print(
                f"  {circuit:8s} {stage:18s} {key:24s} "
                f"{done:4d}/{total:<4d} unit(s) done, "
                f"{secs:7.2f}s compute"
            )
    if not found:
        print("no stored grid units found")
    return 0


def _cmd_search_compare(args) -> int:
    from repro.experiments.report import rows_text, to_json
    from repro.experiments.search_compare import (
        DEFAULT_SEARCH_CIRCUITS,
        DEFAULT_SEARCH_SEED,
        run_search_compare,
    )

    if args.testgen_seed is None:
        args.testgen_seed = DEFAULT_SEARCH_SEED
    config = _campaign_config(args)
    rows = run_search_compare(
        circuits=tuple(args.circuits or DEFAULT_SEARCH_CIRCUITS),
        strategies=tuple(args.strategies) if args.strategies else None,
        budget=args.budget,
        config=config.lab_config(),
        testgen_seed=config.testgen_seed,
        max_vectors=config.max_vectors,
    )
    print(
        rows_text(
            rows,
            ["Circuit", "Strategy", "Budget", "Tried", "Vectors",
             "Killed", "Targets", "Kill%", "Kills/1k"],
            ["circuit", "strategy", "budget", "candidates", "vectors",
             "killed", "targets", "kill_pct", "kills_per_1k"],
            "Search strategies at an equal candidate budget",
        )
    )
    _archive(args, lambda: to_json(rows))
    return 0


def _cmd_mutants(args) -> int:
    from repro.circuits import load_circuit
    from repro.mutation import generate_mutants

    design = load_circuit(args.circuit)
    names = [args.operator] if args.operator else None
    mutants = generate_mutants(design, names)
    for mutant in mutants[: args.limit]:
        print(mutant)
    if len(mutants) > args.limit:
        print(f"... and {len(mutants) - args.limit} more")
    return 0


def _cmd_testgen(args) -> int:
    from repro.circuits import load_circuit
    from repro.mutation import generate_mutants
    from repro.search import SearchBudget
    from repro.testgen import MutationTestGenerator

    config = _campaign_config(args)
    design = load_circuit(args.circuit)
    names = [args.operator] if args.operator else None
    mutants = generate_mutants(design, names)
    budget = None
    if config.search_budget:
        budget = SearchBudget(max_candidates=config.search_budget)
    generator = MutationTestGenerator(
        design,
        seed=config.testgen_seed,
        batch_size=config.batch_size,
        chunk_length=config.chunk_length,
        chunk_candidates=config.chunk_candidates,
        stall_rounds=config.stall_rounds,
        max_vectors=config.max_vectors,
        strategy=config.search,
        search_budget=budget,
    )
    result = generator.generate(mutants)
    print(
        f"{len(result.vectors)} vectors kill {len(result.killed_mids)}/"
        f"{result.total_targets} mutants "
        f"({100 * result.kill_fraction:.1f}%)"
    )
    width = max((design.stimulus_width() + 3) // 4, 1)
    for vector in result.vectors:
        print(f"  {vector:0{width}x}")
    return 0


def _cmd_run(args) -> int:
    from repro.campaign.runner import Campaign
    from repro.experiments.report import campaign_text

    config = CampaignConfig.from_file(args.config)
    overrides = {}
    if args.circuits is not None:
        overrides["circuits"] = tuple(args.circuits)
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.grid is not None:
        overrides["grid"] = args.grid
    if args.grid_workers is not None:
        overrides["grid_workers"] = args.grid_workers
    if args.grid_shard is not None:
        overrides["grid_shard"] = args.grid_shard
    if args.coordinator is not None:
        overrides["coordinator"] = args.coordinator
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.fault_model is not None:
        overrides["fault_model"] = args.fault_model
    if args.fault_lanes is not None:
        overrides["fault_lanes"] = args.fault_lanes
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.cache_max_entries is not None:
        overrides["cache_max_entries"] = args.cache_max_entries
    if args.search is not None:
        overrides["search"] = args.search
    if args.search_budget is not None:
        overrides["search_budget"] = args.search_budget
    if args.telemetry:
        overrides["telemetry"] = True
    if args.trace:
        # Execution-only, like telemetry: grid and remote workers see
        # config.trace and ship span buffers home in their envelopes.
        overrides["trace"] = True
    if overrides:
        config = config.replace(**overrides)
    events = _events(args)
    tracer = None
    if args.trace:
        from repro.campaign.events import TeeEvents, TracingEvents
        from repro.obs.trace import Tracer

        tracer = Tracer()
        events = TeeEvents(TracingEvents(tracer), events)
    # A resume without a cache directory is rejected by Campaign.run
    # (the single owner of that validation).
    campaign = Campaign(config, events)
    if tracer is not None:
        from repro.obs.trace import tracing

        # Active for the run, so the schedulers stitch worker span
        # buffers into this tracer as completions are harvested.
        with tracing(tracer):
            result = campaign.run(resume=args.resume)
    else:
        result = campaign.run(resume=args.resume)
    if tracer is not None:
        tracer.write(args.trace)
        print(
            f"trace: {len(tracer)} event(s) written to {args.trace}",
            file=sys.stderr,
        )
    if args.telemetry and campaign.last_metrics is not None:
        _print_metrics(campaign.last_metrics.snapshot())
    print(campaign_text(result))
    _archive(args, result.to_json)
    return 0


def _print_metrics(snapshot: dict) -> None:
    """Telemetry summary on stderr (keeps stdout parseable)."""
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if not (counters or gauges or histograms):
        return
    print("telemetry:", file=sys.stderr)
    for name in sorted(counters):
        print(f"  {name:44s} {counters[name]}", file=sys.stderr)
    for name in sorted(gauges):
        print(f"  {name:44s} {gauges[name]:g}", file=sys.stderr)
    for name in sorted(histograms):
        hist = histograms[name]
        quantiles = hist.get("quantiles") or {}
        tail = "".join(
            f" {label}={quantiles[label]:.3f}s"
            for label in ("p50", "p95", "p99")
            if label in quantiles
        )
        print(
            f"  {name:44s} count={hist['count']} sum={hist['sum']:.3f}s"
            f"{tail}",
            file=sys.stderr,
        )


def _cmd_trace(args) -> int:
    """Top-k self-time summary of a Chrome trace-event JSON."""
    import json
    from pathlib import Path

    from repro.errors import ConfigError
    from repro.obs.trace import summarize

    try:
        text = Path(args.trace).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read trace file: {exc}") from exc
    try:
        trace = json.loads(text)
    except ValueError as exc:
        raise ConfigError(f"malformed trace JSON: {exc}") from exc
    if args.validate:
        from repro.obs.trace import validate_trace

        try:
            count = validate_trace(trace)
        except ValueError as exc:
            print(f"repro trace: invalid: {exc}", file=sys.stderr)
            return 1
        print(f"trace OK: {count} event(s)")
        return 0
    rows = summarize(trace, top=args.top)
    if not rows:
        print("no spans in trace")
        return 1
    print(f"{'span':44s} {'count':>6s} {'total':>10s} {'self':>10s}")
    for row in rows:
        print(
            f"{row['name'][:44]:44s} {row['count']:6d} "
            f"{row['total_us'] / 1e6:9.3f}s {row['self_us'] / 1e6:9.3f}s"
        )
    return 0


def _render_top(snapshot: dict, previous: dict, now: float,
                progress: dict | None = None) -> str:
    """One frame of ``repro top``.

    ``previous`` maps worker id -> (monotonic time, completed_total)
    from the last frame; per-worker rates come from the deltas.
    ``progress`` optionally maps campaign id -> a
    :class:`~repro.obs.progress.ProgressTracker` snapshot, rendered
    as an indented pane under the campaign's line.
    """
    lines = [
        f"queue: {snapshot.get('queue_depth', 0)} pending, "
        f"{snapshot.get('leased_units', 0)} leased, "
        f"{snapshot.get('waves', 0)} wave(s)"
    ]
    workers = snapshot.get("workers") or []
    if workers:
        lines.append("")
        lines.append(
            f"  {'worker':26s} {'leased':>6s} {'done':>7s} {'rate/s':>8s}"
        )
        for worker in workers:
            wid = str(worker.get("worker", "?"))
            name = str(worker.get("name") or wid)
            done = int(worker.get("completed_total") or 0)
            last = previous.get(wid)
            rate = "-"
            if last is not None and now > last[0]:
                rate = f"{(done - last[1]) / (now - last[0]):.2f}"
            previous[wid] = (now, done)
            lines.append(
                f"  {name[:26]:26s} {int(worker.get('leased') or 0):6d} "
                f"{done:7d} {rate:>8s}"
            )
    campaigns = snapshot.get("campaigns") or []
    for campaign in campaigns:
        cid = str(campaign.get("campaign"))
        lines.append(
            f"  campaign {cid}: "
            f"{campaign.get('status')} "
            f"({campaign.get('events', 0)} event(s))"
        )
        snap = (progress or {}).get(cid)
        if snap:
            from repro.obs.progress import format_status

            # The first format_status line repeats the state shown
            # right above; the panes below it are the value added.
            for line in format_status(snap)[1:]:
                lines.append(f"    {line}")
    metrics = snapshot.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in ranked[:12]:
            lines.append(f"  {name:44s} {value}")
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("")
        for name in sorted(histograms)[:8]:
            hist = histograms[name]
            quantiles = hist.get("quantiles") or {}
            tail = "".join(
                f" {label}={quantiles[label]:.3f}s"
                for label in ("p50", "p95", "p99")
                if label in quantiles
            )
            lines.append(
                f"  {name:44s} count={hist.get('count', 0)}{tail}"
            )
    return "\n".join(lines)


def _top_progress(client, snapshot: dict, trackers: dict) -> dict:
    """Fold each campaign's event stream into a progress snapshot.

    ``trackers`` maps campaign id -> ``(ProgressTracker, next seq)``
    and persists across frames, so every frame fetches only the events
    that landed since the previous one.
    """
    from repro.errors import ReproError
    from repro.obs.progress import ProgressTracker

    progress: dict[str, dict] = {}
    for entry in snapshot.get("campaigns") or []:
        cid = str(entry.get("campaign"))
        tracker, since = trackers.get(cid) or (ProgressTracker(), 0)
        try:
            events = client.campaign_events(cid, since)
        except ReproError:
            events = []  # raced a restart; retry next frame
        for event in events:
            tracker.feed(event)
            seq = event.get("seq")
            since = seq + 1 if isinstance(seq, int) else since + 1
        trackers[cid] = (tracker, since)
        progress[cid] = tracker.snapshot()
    return progress


def _cmd_top(args) -> int:
    """Refreshing one-screen view of a coordinator's telemetry."""
    import time

    from repro.net import CoordinatorClient

    client = CoordinatorClient(args.coordinator)
    client.ping()
    previous: dict[str, tuple[float, int]] = {}
    trackers: dict[str, tuple] = {}
    try:
        while True:
            started = time.monotonic()
            snapshot = client.metrics()
            frame = _render_top(
                snapshot, previous, started,
                _top_progress(client, snapshot, trackers),
            )
            if args.once:
                print(frame)
                return 0
            # ANSI clear + home, then the frame — one screen, no scroll.
            print(f"\x1b[2J\x1b[H{client.url}\n{frame}", flush=True)
            delay = max(args.interval, 0.2) - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_serve(args) -> int:
    from repro.net import DEFAULT_LEASE_TIMEOUT, CoordinatorServer

    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer(pid="coordinator")
    server = CoordinatorServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        lease_timeout=(
            args.lease_timeout if args.lease_timeout is not None
            else DEFAULT_LEASE_TIMEOUT
        ),
        service=not args.no_service,
        verbose=args.verbose,
        tracer=tracer,
    )
    store = f", job store: {args.cache_dir}" if args.cache_dir else ""
    mode = "broker only" if args.no_service else "broker + service"
    print(
        f"coordinator listening on {server.url} ({mode}{store})",
        file=sys.stderr,
        flush=True,
    )
    # SIGTERM (process managers, the remote smoke's reap) must unwind
    # like Ctrl-C does, so journals close and the trace gets written.
    def _terminate(signum, frame):
        raise SystemExit(0)

    import signal

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("coordinator: interrupted, shutting down", file=sys.stderr)
    finally:
        server.close()
        if tracer is not None:
            tracer.write(args.trace)
            print(
                f"trace: {len(tracer)} event(s) written to {args.trace}",
                file=sys.stderr,
            )
    return 0


def _journal_streams(target: str) -> list[tuple[str, list[dict]]]:
    """``(campaign id, events)`` pairs from an on-disk journal tree.

    Accepts a journal directory itself, a campaign directory holding a
    ``journal/`` subdirectory, or a ``serve --cache-dir`` root (all of
    whose ``service/<cid>/journal`` trees are listed).
    """
    import os

    from repro.errors import ConfigError
    from repro.obs.journal import read_records

    if not os.path.isdir(target):
        raise ConfigError(
            f"status target {target!r} is neither a coordinator URL "
            "nor a directory"
        )

    def is_journal(directory: str) -> bool:
        try:
            names = os.listdir(directory)
        except OSError:
            return False
        return any(
            name == "active.jsonl" or name.startswith("segment-")
            for name in names
        )

    normalized = os.path.normpath(target)
    if is_journal(normalized):
        cid = os.path.basename(os.path.dirname(normalized)) or normalized
        return [(cid, read_records(normalized))]
    nested = os.path.join(normalized, "journal")
    if os.path.isdir(nested):
        return [(os.path.basename(normalized), read_records(nested))]
    service = os.path.join(normalized, "service")
    root = service if os.path.isdir(service) else normalized
    streams: list[tuple[str, list[dict]]] = []
    try:
        names = sorted(os.listdir(root))
    except OSError:
        names = []
    for name in names:
        candidate = os.path.join(root, name, "journal")
        if os.path.isdir(candidate):
            streams.append((name, read_records(candidate)))
    return streams


def _cmd_status(args) -> int:
    """One-shot campaign progress from a coordinator or a journal."""
    import json

    from repro.obs.progress import ProgressTracker, format_status

    if args.target.startswith(("http://", "https://")):
        from repro.net import CoordinatorClient

        client = CoordinatorClient(args.target)
        client.ping()
        streams = [
            (str(entry.get("campaign")),
             client.campaign_events(str(entry.get("campaign")), 0))
            for entry in client.metrics().get("campaigns") or []
        ]
    else:
        streams = _journal_streams(args.target)
    if args.campaign is not None:
        streams = [
            (cid, events) for cid, events in streams
            if cid == args.campaign
        ]
    if not streams:
        print("no campaigns found")
        return 1
    reports: dict[str, dict] = {}
    for cid, events in streams:
        tracker = ProgressTracker()
        tracker.feed_all(events)
        reports[cid] = tracker.snapshot()
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
        return 0
    for cid in sorted(reports):
        print(f"campaign {cid}:")
        for line in format_status(reports[cid]):
            print(f"  {line}")
    return 0


def _cmd_bench_diff(args) -> int:
    """Gate: compare benchmark trajectory runs, exit 1 on regressions."""
    from repro.errors import ConfigError
    from repro.obs.benchdiff import DEFAULT_TOLERANCE, compare_trajectories

    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    try:
        report = compare_trajectories(
            args.fresh, args.baseline, tolerance=tolerance
        )
    except (OSError, ValueError) as exc:
        raise ConfigError(f"bench-diff: {exc}") from exc
    note = report.get("note")
    if note:
        print(f"bench-diff: {note}")
        return 0
    for entry in report["regressions"]:
        print(
            f"REGRESSION {entry['metric']}: {entry['baseline']:g} -> "
            f"{entry['fresh']:g} ({entry['ratio']:.2f}x)  [{entry['row']}]"
        )
    for entry in report["improved"]:
        print(
            f"improved   {entry['metric']}: {entry['baseline']:g} -> "
            f"{entry['fresh']:g} ({entry['ratio']:.2f}x)  [{entry['row']}]"
        )
    for entry in report["skipped"]:
        print(f"skipped    {entry['row']}: {entry['reason']}")
    print(
        f"bench-diff: {len(report['regressions'])} regression(s), "
        f"{len(report['improved'])} improved, {report['ok']} ok, "
        f"{len(report['skipped'])} skipped, "
        f"{report['unmatched']} unmatched "
        f"(tolerance {tolerance:.0%})"
    )
    return 1 if report["regressions"] else 0


def _cmd_worker(args) -> int:
    from repro.net import WorkerDaemon

    daemon = WorkerDaemon(
        args.coordinator,
        name=args.name or "",
        max_units=args.max_units,
        max_idle=args.max_idle,
    )
    try:
        daemon.run()
    except KeyboardInterrupt:
        print("worker: interrupted, exiting", file=sys.stderr)
    return 0


#: ``repro submit`` never sleeps longer than this between polls, no
#: matter how long the event stream has been quiet.
SUBMIT_BACKOFF_CAP = 10.0


def _cmd_submit(args) -> int:
    import json
    import random
    import time

    from repro.campaign.result import CampaignResult
    from repro.experiments.report import campaign_text
    from repro.net import CoordinatorClient
    from repro.obs import metrics as _metrics
    from repro.obs.metrics import Metrics

    config = CampaignConfig.from_file(args.config)
    if args.circuits is not None:
        config = config.replace(circuits=tuple(args.circuits))
    client = CoordinatorClient(args.coordinator)
    client.ping()
    cid = client.submit_campaign(config.to_dict())["campaign"]
    print(f"submitted campaign {cid} to {client.url}", file=sys.stderr)

    stats = Metrics()

    def drain(since: int) -> tuple[int, bool]:
        fresh = False
        for event in client.campaign_events(cid, since):
            fresh = True
            stats.counter("submit.events")
            since = int(event.get("seq", since)) + 1
            if not args.quiet:
                print(json.dumps(event, sort_keys=True), flush=True)
        return since, fresh

    # Quiet polls back off exponentially to a cap; any event resets
    # the delay to the base interval.  The jitter keeps a fleet of
    # watchers from synchronizing their polls against one coordinator.
    base = max(args.poll, 0.05)
    cap = max(base, SUBMIT_BACKOFF_CAP)
    delay = base
    jitter = random.Random(cid)
    since = max(0, args.since)
    while True:
        since, fresh = drain(since)
        status = client.campaign_status(cid)
        stats.counter("submit.polls")
        if status["status"] in ("done", "failed"):
            # Events that landed between the drain and the status
            # read are picked up by one final drain.
            drain(since)
            break
        if fresh:
            delay = base
        else:
            stats.counter("submit.backoffs")
            delay = min(delay * 2.0, cap)
        time.sleep(jitter.uniform(base, delay))
    counters = stats.snapshot()["counters"]
    print(
        f"campaign {cid}: {counters.get('submit.events', 0)} event(s) "
        f"over {counters.get('submit.polls', 0)} poll(s), "
        f"{counters.get('submit.backoffs', 0)} backoff(s)",
        file=sys.stderr,
    )
    active = _metrics.active()
    if active.enabled:
        active.merge(stats.snapshot())
    if status["status"] == "failed":
        print(
            f"repro: campaign {cid} failed: "
            f"{status.get('error', 'unknown error')}",
            file=sys.stderr,
        )
        return 1
    result = CampaignResult.from_dict(status["result"])
    print(campaign_text(result))
    _archive(args, result.to_json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
