"""Command-line interface: ``python -m repro <command>``.

Commands

* ``list``       — registered benchmark circuits
* ``show``       — stats of one circuit (mutants, gates, faults)
* ``synth``      — synthesize a circuit and print its ``.bench`` netlist
* ``mutants``    — list (a sample of) a circuit's mutants
* ``testgen``    — generate mutation-adequate validation data
* ``table1``     — regenerate the paper's Table 1
* ``table2``     — regenerate the paper's Table 2
* ``atpg-reuse`` — the §1 validation-reuse experiment
* ``ablation``   — sampling-rate / weight-scheme ablations
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import LabConfig, PAPER_CIRCUITS


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=20050301,
                        help="master experiment seed")
    parser.add_argument("--random-budget", type=int, default=None,
                        help="random baseline length (both styles)")
    parser.add_argument("--equivalence-budget", type=int, default=256,
                        help="stimuli for equivalent-mutant classification")
    parser.add_argument("--max-vectors", type=int, default=256,
                        help="cap on generated validation vectors")


def _config(args) -> LabConfig:
    config = LabConfig(seed=args.seed,
                       equivalence_budget=args.equivalence_budget)
    if args.random_budget is not None:
        config.random_budget_comb = args.random_budget
        config.random_budget_seq = args.random_budget
    return config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Mutation sampling for structural test data generation "
            "(Scholive et al., DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark circuits")

    show = sub.add_parser("show", help="circuit statistics")
    show.add_argument("circuit")

    synth = sub.add_parser("synth", help="print the synthesized .bench")
    synth.add_argument("circuit")

    mutants = sub.add_parser("mutants", help="list mutants")
    mutants.add_argument("circuit")
    mutants.add_argument("--operator", default=None)
    mutants.add_argument("--limit", type=int, default=20)

    testgen = sub.add_parser(
        "testgen", help="generate mutation-adequate validation data"
    )
    testgen.add_argument("circuit")
    testgen.add_argument("--operator", default=None)
    testgen.add_argument("--seed", type=int, default=7)
    testgen.add_argument("--max-vectors", type=int, default=256)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--circuits", nargs="*", default=list(PAPER_CIRCUITS))
    _add_budget_args(table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--circuits", nargs="*", default=list(PAPER_CIRCUITS))
    table2.add_argument("--fraction", type=float, default=0.10)
    table2.add_argument("--no-calibrate", action="store_true")
    _add_budget_args(table2)

    reuse = sub.add_parser("atpg-reuse", help="validation-reuse experiment")
    reuse.add_argument("--circuits", nargs="*",
                       default=["c17", "c432", "c499"])
    _add_budget_args(reuse)

    ablation = sub.add_parser("ablation", help="ablation studies")
    ablation.add_argument("kind", choices=["rate", "weights"])
    ablation.add_argument("--circuit", default="b01")
    _add_budget_args(ablation)

    args = parser.parse_args(argv)
    command = args.command

    if command == "list":
        from repro.circuits import circuit_names, get_circuit

        for name in circuit_names():
            info = get_circuit(name)
            style = "seq " if info.sequential else "comb"
            print(f"{name:6s} [{info.family:7s} {style}] {info.description}")
        return 0

    if command == "show":
        return _cmd_show(args)
    if command == "synth":
        from repro.circuits import load_circuit
        from repro.netlist.bench import write_bench
        from repro.synth import synthesize

        print(write_bench(synthesize(load_circuit(args.circuit))), end="")
        return 0
    if command == "mutants":
        return _cmd_mutants(args)
    if command == "testgen":
        return _cmd_testgen(args)
    if command == "table1":
        from repro.experiments.report import table1_text
        from repro.experiments.table1 import run_table1

        result = run_table1(
            circuits=tuple(args.circuits),
            config=_config(args),
            max_vectors=args.max_vectors,
        )
        print(table1_text(result))
        return 0
    if command == "table2":
        from repro.experiments.report import table2_text
        from repro.experiments.table2 import run_table2

        result = run_table2(
            circuits=tuple(args.circuits),
            fraction=args.fraction,
            config=_config(args),
            max_vectors=args.max_vectors,
            calibrate=not args.no_calibrate,
        )
        print(table2_text(result))
        return 0
    if command == "atpg-reuse":
        from repro.experiments.atpg_reuse import run_atpg_reuse
        from repro.experiments.report import rows_text

        rows = run_atpg_reuse(
            circuits=tuple(args.circuits), config=_config(args),
            max_vectors=args.max_vectors,
        )
        print(
            rows_text(
                rows,
                ["Circuit", "Mode", "Preload", "Cov0%", "Faults",
                 "Decisions", "Backtracks", "ATPG vecs", "Final%"],
                ["circuit", "mode", "preload_vectors",
                 "preload_coverage_pct", "targeted_faults", "decisions",
                 "backtracks", "atpg_vectors", "final_coverage_pct"],
                "Validation-data reuse vs deterministic-only ATPG",
            )
        )
        return 0
    if command == "ablation":
        from repro.experiments.ablation import (
            run_rate_ablation,
            run_weight_ablation,
        )
        from repro.experiments.report import rows_text

        if args.kind == "rate":
            rows = run_rate_ablation(
                circuit=args.circuit, config=_config(args),
                max_vectors=args.max_vectors,
            )
        else:
            rows = run_weight_ablation(
                circuit=args.circuit, config=_config(args),
                max_vectors=args.max_vectors,
            )
        print(
            rows_text(
                rows,
                ["Circuit", "Variant", "Fraction", "Selected", "MS%",
                 "NLFCE"],
                ["circuit", "variant", "fraction", "selected", "ms_pct",
                 "nlfce"],
                f"Ablation: {args.kind}",
            )
        )
        return 0
    parser.error(f"unknown command {command!r}")
    return 2


def _cmd_show(args) -> int:
    from repro.circuits import get_circuit, load_circuit
    from repro.fault import collapse_faults, generate_faults
    from repro.mutation import generate_mutants, mutants_by_operator
    from repro.synth import synthesize

    info = get_circuit(args.circuit)
    design = load_circuit(args.circuit)
    netlist = synthesize(design)
    mutants = generate_mutants(design)
    groups = mutants_by_operator(mutants)
    print(f"{info.name}: {info.description}")
    print(f"  family      : {info.family}")
    print(f"  style       : {'sequential' if info.sequential else 'combinational'}")
    stats = netlist.stats()
    print(f"  gates/dffs  : {stats['gates']} / {stats['dffs']}")
    print(f"  logic depth : {stats['depth']}")
    print(f"  faults      : {len(generate_faults(netlist))} uncollapsed, "
          f"{len(collapse_faults(netlist))} collapsed")
    print(f"  mutants     : {len(mutants)} "
          f"({', '.join(f'{op}:{len(ms)}' for op, ms in sorted(groups.items()))})")
    return 0


def _cmd_mutants(args) -> int:
    from repro.circuits import load_circuit
    from repro.mutation import generate_mutants

    design = load_circuit(args.circuit)
    names = [args.operator] if args.operator else None
    mutants = generate_mutants(design, names)
    for mutant in mutants[: args.limit]:
        print(mutant)
    if len(mutants) > args.limit:
        print(f"... and {len(mutants) - args.limit} more")
    return 0


def _cmd_testgen(args) -> int:
    from repro.circuits import load_circuit
    from repro.mutation import generate_mutants
    from repro.testgen import MutationTestGenerator

    design = load_circuit(args.circuit)
    names = [args.operator] if args.operator else None
    mutants = generate_mutants(design, names)
    generator = MutationTestGenerator(
        design, seed=args.seed, max_vectors=args.max_vectors
    )
    result = generator.generate(mutants)
    print(
        f"{len(result.vectors)} vectors kill {len(result.killed_mids)}/"
        f"{result.total_targets} mutants "
        f"({100 * result.kill_fraction:.1f}%)"
    )
    width = max((design.stimulus_width() + 3) // 4, 1)
    for vector in result.vectors:
        print(f"  {vector:0{width}x}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
