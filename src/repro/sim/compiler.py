"""Closure-compiling process executor.

Compiles (patched) process bodies into nested Python closures once, so
mutant simulation pays no per-node dispatch or patch lookup at run time:

* patches resolve at compile time (each mutant compiles its own view);
* operators specialize on the statically checked operand types (a bit
  ``and`` compiles to ``&``, a boolean one to ``and``);
* assignment range checks compile to type-specific closures that raise
  :class:`repro.errors.MutantRuntimeError` exactly like the interpreter.

The interpreter (:mod:`repro.sim.interp`) remains the reference
implementation; a property test pins the two to identical behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import MutantRuntimeError, SimulationError
from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Design, Process, SymbolKind
from repro.hdl.values import BV
from repro.sim.interp import ExecContext

_ExprFn = Callable[[ExecContext], object]
_StmtFn = Callable[[ExecContext], None]


class CompileCache:
    """Shares compiled statement closures across mutants of one design.

    Closures are stateless (the context is an argument), so any mutant
    whose patch does not touch a statement's subtree can reuse the
    design-wide compilation of that statement.  Keys are node object
    ids; the design AST outlives every executor, keeping ids stable.
    """

    def __init__(self) -> None:
        self.stmt_fns: dict[int, _StmtFn] = {}
        self.subtree_nids: dict[int, frozenset[int]] = {}

    def nids_of(self, stmt: ast.Stmt) -> frozenset[int]:
        key = id(stmt)
        cached = self.subtree_nids.get(key)
        if cached is None:
            acc: set[int] = set()
            _collect_nids(stmt, acc)
            cached = frozenset(acc)
            self.subtree_nids[key] = cached
        return cached


def _collect_nids(node: ast.Node, acc: set[int]) -> None:
    acc.add(node.nid)
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        _collect_from(value, acc)


def _collect_from(value, acc: set[int]) -> None:
    if isinstance(value, ast.Node):
        _collect_nids(value, acc)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect_from(item, acc)


class CompiledExecutor:
    """Per-design (and per-mutant) compiled process bodies."""

    def __init__(
        self,
        design: Design,
        patch: dict[int, ast.Node] | None = None,
        cache: CompileCache | None = None,
    ):
        compiler = _Compiler(patch or {}, cache)
        self._fns: dict[str, _StmtFn] = {
            process.label: compiler.compile_body(process.body)
            for process in design.processes
        }

    def exec_process(self, process: Process, ctx: ExecContext) -> None:
        self._fns[process.label](ctx)


class InterpretedExecutor:
    """Adapter giving the interpreter the executor interface."""

    def __init__(self, design: Design, patch: dict[int, ast.Node] | None = None):
        from repro.sim.interp import Evaluator

        self._evaluator = Evaluator(patch)

    def exec_process(self, process: Process, ctx: ExecContext) -> None:
        self._evaluator.exec_body(process.body, ctx)


class _Compiler:
    def __init__(self, patch: dict[int, ast.Node],
                 cache: CompileCache | None = None):
        self._patch = patch
        self._cache = cache

    def _resolve(self, node: ast.Node) -> ast.Node:
        return self._patch.get(node.nid, node)

    # -- statements ----------------------------------------------------------

    def compile_body(self, body: list[ast.Stmt]) -> _StmtFn:
        fns = [self.compile_stmt_cached(stmt) for stmt in body]
        if len(fns) == 1:
            return fns[0]

        def run(ctx: ExecContext) -> None:
            for fn in fns:
                fn(ctx)

        return run

    def compile_stmt_cached(self, stmt: ast.Stmt) -> _StmtFn:
        cache = self._cache
        if cache is None:
            return self.compile_stmt(stmt)
        if self._patch and not self._patch.keys().isdisjoint(
            cache.nids_of(stmt)
        ):
            # The mutation lives in this subtree: compile privately.
            return self.compile_stmt(stmt)
        key = id(stmt)
        fn = cache.stmt_fns.get(key)
        if fn is None:
            # Compile the pristine subtree once, shared by all mutants.
            fn = _Compiler({}, cache).compile_stmt(stmt)
            cache.stmt_fns[key] = fn
        return fn

    def compile_stmt(self, stmt: ast.Stmt) -> _StmtFn:
        stmt = self._resolve(stmt)
        if isinstance(stmt, ast.SignalAssign):
            return self._compile_assign(stmt.target, stmt.value, signal=True)
        if isinstance(stmt, ast.VarAssign):
            return self._compile_assign(stmt.target, stmt.value, signal=False)
        if isinstance(stmt, ast.If):
            arms = [
                (self.compile_expr(cond), self.compile_body(body))
                for cond, body in stmt.arms
            ]
            else_fn = self.compile_body(stmt.else_body) if stmt.else_body else None

            def run_if(ctx: ExecContext) -> None:
                for cond_fn, body_fn in arms:
                    value = cond_fn(ctx)
                    if value is True:
                        body_fn(ctx)
                        return
                    if value is not False:
                        raise MutantRuntimeError(
                            f"condition is not boolean: {value!r}"
                        )
                if else_fn is not None:
                    else_fn(ctx)

            return run_if
        if isinstance(stmt, ast.Case):
            return self._compile_case(stmt)
        if isinstance(stmt, ast.ForLoop):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.NullStmt):
            return _nop
        raise SimulationError(f"cannot compile {type(stmt).__name__}")

    def _compile_case(self, stmt: ast.Case) -> _StmtFn:
        selector_fn = self.compile_expr(stmt.selector)
        selector_is_bv = isinstance(
            self._resolve(stmt.selector).ty, ty.BitVectorType
        )
        arms: list[tuple[list[_ExprFn], _StmtFn]] = []
        others_fn: _StmtFn | None = None
        for when in stmt.whens:
            body_fn = self.compile_body(when.body)
            if when.is_others:
                others_fn = body_fn
            else:
                choice_fns = [self.compile_expr(c) for c in when.choices]
                arms.append((choice_fns, body_fn))

        def run_case(ctx: ExecContext) -> None:
            selector = selector_fn(ctx)
            if selector_is_bv:
                selector = _bv_key(selector)
            for choice_fns, body_fn in arms:
                for choice_fn in choice_fns:
                    choice = choice_fn(ctx)
                    if selector_is_bv:
                        choice = _bv_key(choice)
                    if choice == selector:
                        body_fn(ctx)
                        return
            if others_fn is not None:
                others_fn(ctx)

        return run_case

    def _compile_for(self, stmt: ast.ForLoop) -> _StmtFn:
        low_fn = self.compile_expr(stmt.low)
        high_fn = self.compile_expr(stmt.high)
        body_fn = self.compile_body(stmt.body)
        var = stmt.var
        ascending = stmt.direction == "to"

        def run_for(ctx: ExecContext) -> None:
            low = low_fn(ctx)
            high = high_fn(ctx)
            values = (
                range(low, high + 1) if ascending else range(low, high - 1, -1)
            )
            ctx.loop_stack.append((var, 0))
            try:
                for value in values:
                    ctx.loop_stack[-1] = (var, value)
                    body_fn(ctx)
            finally:
                ctx.loop_stack.pop()

        return run_for

    # -- assignment ------------------------------------------------------------

    def _compile_assign(
        self, target: ast.Expr, value: ast.Expr, signal: bool
    ) -> _StmtFn:
        value_fn = self.compile_expr(value)
        target = self._resolve(target)
        if isinstance(target, ast.Name):
            name = target.symbol.name
            check = _make_checker(target.symbol.ty)
            if signal:
                def assign_sig(ctx: ExecContext) -> None:
                    ctx.schedule(name, check(value_fn(ctx)))
                return assign_sig

            def assign_var(ctx: ExecContext) -> None:
                ctx.variables[name] = check(value_fn(ctx))
            return assign_var
        if isinstance(target, ast.Index):
            name = target.prefix.symbol.name
            vec_type: ty.BitVectorType = target.prefix.symbol.ty
            index_fn = self.compile_expr(target.index)
            check_bit = _make_checker(ty.BIT)

            def assign_indexed(ctx: ExecContext) -> None:
                offset = _offset(vec_type, index_fn(ctx))
                bit = check_bit(value_fn(ctx))
                if signal:
                    base = ctx.schedule_base(name)
                    ctx.schedule(name, base.with_bit(offset, bit))
                else:
                    ctx.variables[name] = ctx.variables[name].with_bit(
                        offset, bit
                    )

            return assign_indexed
        if isinstance(target, ast.Slice):
            name = target.prefix.symbol.name
            vec_type = target.prefix.symbol.ty
            left_fn = self.compile_expr(target.left)
            right_fn = self.compile_expr(target.right)

            def assign_sliced(ctx: ExecContext) -> None:
                high = _offset(vec_type, left_fn(ctx))
                low = _offset(vec_type, right_fn(ctx))
                piece = value_fn(ctx)
                if not isinstance(piece, BV) or piece.width != high - low + 1:
                    raise MutantRuntimeError(
                        "slice assignment width mismatch"
                    )
                if signal:
                    base = ctx.schedule_base(name)
                    ctx.schedule(name, base.with_slice(high, low, piece))
                else:
                    ctx.variables[name] = ctx.variables[name].with_slice(
                        high, low, piece
                    )

            return assign_sliced
        raise SimulationError(
            f"unsupported assignment target {type(target).__name__}"
        )

    # -- expressions -------------------------------------------------------------

    def compile_expr(self, node: ast.Expr) -> _ExprFn:
        node = self._resolve(node)
        kind = type(node)
        if kind is ast.Name:
            symbol = node.symbol
            name = symbol.name
            if symbol.kind in (SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL):
                value = symbol.init
                return lambda ctx: value
            if symbol.kind is SymbolKind.VARIABLE:
                return lambda ctx: ctx.variables[name]
            if symbol.kind is SymbolKind.LOOP_VAR:
                return lambda ctx: ctx.loop_value(name)
            return lambda ctx: ctx.read_signal(name)
        if kind is ast.IntLit:
            value = node.value
            return lambda ctx: value
        if kind is ast.BitLit:
            value = node.value
            return lambda ctx: value
        if kind is ast.BoolLit:
            value = node.value
            return lambda ctx: value
        if kind is ast.BitStringLit:
            value = BV.from_string(node.bits)
            return lambda ctx: value
        if kind is ast.EnumLit:
            value = node.index
            return lambda ctx: value
        if kind is ast.Binary:
            return self._compile_binary(node)
        if kind is ast.Unary:
            return self._compile_unary(node)
        if kind is ast.Index:
            prefix_fn = self.compile_expr(node.prefix)
            index_fn = self.compile_expr(node.index)
            vec_type = self._resolve(node.prefix).ty
            if not isinstance(vec_type, ty.BitVectorType):
                raise SimulationError("indexing a non-vector expression")

            def eval_index(ctx: ExecContext):
                return prefix_fn(ctx).bit(_offset(vec_type, index_fn(ctx)))

            return eval_index
        if kind is ast.Slice:
            prefix_fn = self.compile_expr(node.prefix)
            left_fn = self.compile_expr(node.left)
            right_fn = self.compile_expr(node.right)
            vec_type = self._resolve(node.prefix).ty

            def eval_slice(ctx: ExecContext):
                return prefix_fn(ctx).slice(
                    _offset(vec_type, left_fn(ctx)),
                    _offset(vec_type, right_fn(ctx)),
                )

            return eval_slice
        if kind is ast.Attribute:
            prefix = self._resolve(node.prefix)
            name = prefix.symbol.name
            return lambda ctx: name in ctx.events
        if kind is ast.Call:
            signal = self._resolve(node.args[0])
            name = signal.symbol.name
            if node.func == "rising_edge":
                return lambda ctx: (
                    name in ctx.events and ctx.read_signal(name) == 1
                )
            if node.func == "falling_edge":
                return lambda ctx: (
                    name in ctx.events and ctx.read_signal(name) == 0
                )
            raise SimulationError(f"unknown function {node.func!r}")
        if kind is ast.OthersAggregate:
            bit_fn = self.compile_expr(node.value)
            width = node.ty.width
            ones = BV((1 << width) - 1, width)
            zeros = BV(0, width)
            return lambda ctx: ones if bit_fn(ctx) else zeros
        raise SimulationError(f"cannot compile {kind.__name__}")

    def _compile_unary(self, node: ast.Unary) -> _ExprFn:
        operand_fn = self.compile_expr(node.operand)
        operand_ty = self._resolve(node.operand).ty
        if node.op == "not":
            if isinstance(operand_ty, ty.BooleanType):
                return lambda ctx: not operand_fn(ctx)
            if isinstance(operand_ty, ty.BitVectorType):
                return lambda ctx: _bv_not(operand_fn(ctx))
            return lambda ctx: operand_fn(ctx) ^ 1
        if node.op == "-":
            return lambda ctx: -operand_fn(ctx)
        raise SimulationError(f"unsupported unary operator {node.op!r}")

    def _compile_binary(self, node: ast.Binary) -> _ExprFn:
        lf = self.compile_expr(node.left)
        rf = self.compile_expr(node.right)
        left_ty = self._resolve(node.left).ty
        op = node.op
        if op in _LOGICAL_COMPILERS:
            if isinstance(left_ty, ty.BooleanType):
                return _LOGICAL_COMPILERS[op][0](lf, rf)
            if isinstance(left_ty, ty.BitVectorType):
                return _LOGICAL_COMPILERS[op][2](lf, rf)
            return _LOGICAL_COMPILERS[op][1](lf, rf)
        if op in ("=", "/="):
            if isinstance(left_ty, ty.BitVectorType):
                if op == "=":
                    return lambda ctx: _bv_eq(lf(ctx), rf(ctx))
                return lambda ctx: not _bv_eq(lf(ctx), rf(ctx))
            if op == "=":
                return lambda ctx: lf(ctx) == rf(ctx)
            return lambda ctx: lf(ctx) != rf(ctx)
        if op == "<":
            return lambda ctx: lf(ctx) < rf(ctx)
        if op == "<=":
            return lambda ctx: lf(ctx) <= rf(ctx)
        if op == ">":
            return lambda ctx: lf(ctx) > rf(ctx)
        if op == ">=":
            return lambda ctx: lf(ctx) >= rf(ctx)
        if op == "+":
            return lambda ctx: lf(ctx) + rf(ctx)
        if op == "-":
            return lambda ctx: lf(ctx) - rf(ctx)
        if op == "*":
            return lambda ctx: lf(ctx) * rf(ctx)
        if op == "mod":
            def eval_mod(ctx: ExecContext):
                divisor = rf(ctx)
                if divisor == 0:
                    raise MutantRuntimeError("mod by zero")
                return lf(ctx) % divisor
            return eval_mod
        if op == "rem":
            def eval_rem(ctx: ExecContext):
                divisor = rf(ctx)
                if divisor == 0:
                    raise MutantRuntimeError("rem by zero")
                dividend = lf(ctx)
                return dividend - divisor * int(dividend / divisor)
            return eval_rem
        if op == "&":
            return lambda ctx: _concat(lf(ctx), rf(ctx))
        raise SimulationError(f"unsupported binary operator {op!r}")


def _nop(ctx: ExecContext) -> None:
    return None


def _bv_key(value):
    if isinstance(value, BV):
        return (value.value, value.width)
    raise MutantRuntimeError("case selector/choice kind mismatch")


def _bv_not(value: BV) -> BV:
    return BV(~value.value, value.width)


def _bv_eq(a, b) -> bool:
    if not (isinstance(a, BV) and isinstance(b, BV)):
        raise MutantRuntimeError("comparing vector with scalar")
    if a.width != b.width:
        raise MutantRuntimeError("comparing vectors of unequal width")
    return a.value == b.value


def _concat(a, b) -> BV:
    left = a if isinstance(a, BV) else BV(a, 1)
    right = b if isinstance(b, BV) else BV(b, 1)
    return left.concat(right)


def _offset(vec_type: ty.BitVectorType, index: int) -> int:
    try:
        return vec_type.bit_index(index)
    except ValueError as exc:
        raise MutantRuntimeError(str(exc)) from None


def _make_checker(target_type: ty.HdlType):
    """Type-specialized assignment range/width check."""
    if isinstance(target_type, ty.BitType):
        def check_bit(value):
            if (
                isinstance(value, int)
                and not isinstance(value, bool)
                and (value == 0 or value == 1)
            ):
                return value
            raise MutantRuntimeError(f"cannot assign {value!r} to bit")
        return check_bit
    if isinstance(target_type, ty.BooleanType):
        def check_bool(value):
            if isinstance(value, bool):
                return value
            raise MutantRuntimeError(f"cannot assign {value!r} to boolean")
        return check_bool
    if isinstance(target_type, ty.IntegerType):
        low, high = target_type.low, target_type.high

        def check_int(value):
            if isinstance(value, int) and not isinstance(value, bool):
                if low <= value <= high:
                    return value
                raise MutantRuntimeError(
                    f"value {value} outside {target_type}"
                )
            raise MutantRuntimeError(f"cannot assign {value!r} to integer")
        return check_int
    if isinstance(target_type, ty.EnumType):
        count = len(target_type.literals)

        def check_enum(value):
            if isinstance(value, int) and 0 <= value < count:
                return value
            raise MutantRuntimeError(
                f"cannot assign {value!r} to {target_type}"
            )
        return check_enum
    if isinstance(target_type, ty.BitVectorType):
        width = target_type.width

        def check_vec(value):
            if isinstance(value, BV) and value.width == width:
                return value
            raise MutantRuntimeError(
                f"cannot assign {value!r} to {target_type}"
            )
        return check_vec
    raise SimulationError(f"unknown target type {target_type!r}")


_LOGICAL_COMPILERS = {
    # (boolean, bit, vector) specializations per connective
    "and": (
        lambda lf, rf: lambda ctx: lf(ctx) and rf(ctx),
        lambda lf, rf: lambda ctx: lf(ctx) & rf(ctx),
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 0),
    ),
    "or": (
        lambda lf, rf: lambda ctx: lf(ctx) or rf(ctx),
        lambda lf, rf: lambda ctx: lf(ctx) | rf(ctx),
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 1),
    ),
    "xor": (
        lambda lf, rf: lambda ctx: lf(ctx) != rf(ctx),
        lambda lf, rf: lambda ctx: lf(ctx) ^ rf(ctx),
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 2),
    ),
    "nand": (
        lambda lf, rf: lambda ctx: not (lf(ctx) and rf(ctx)),
        lambda lf, rf: lambda ctx: (lf(ctx) & rf(ctx)) ^ 1,
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 3),
    ),
    "nor": (
        lambda lf, rf: lambda ctx: not (lf(ctx) or rf(ctx)),
        lambda lf, rf: lambda ctx: (lf(ctx) | rf(ctx)) ^ 1,
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 4),
    ),
    "xnor": (
        lambda lf, rf: lambda ctx: lf(ctx) == rf(ctx),
        lambda lf, rf: lambda ctx: (lf(ctx) ^ rf(ctx)) ^ 1,
        lambda lf, rf: lambda ctx: _bv_bin(lf(ctx), rf(ctx), 5),
    ),
}


def _bv_bin(a: BV, b: BV, op: int) -> BV:
    if not (isinstance(a, BV) and isinstance(b, BV)) or a.width != b.width:
        raise MutantRuntimeError("logical op on mismatched vectors")
    if op == 0:
        return BV(a.value & b.value, a.width)
    if op == 1:
        return BV(a.value | b.value, a.width)
    if op == 2:
        return BV(a.value ^ b.value, a.width)
    if op == 3:
        return BV(~(a.value & b.value), a.width)
    if op == 4:
        return BV(~(a.value | b.value), a.width)
    return BV(~(a.value ^ b.value), a.width)
