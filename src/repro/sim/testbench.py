"""Testbench protocol: reset, clocking and sequence application.

The observation convention (shared with the gate-level simulator so that
behaviour and synthesized gates can be compared cycle by cycle):

* sequential designs — per cycle: drive data inputs with the clock low,
  settle, raise the clock (state updates), settle, sample outputs, lower
  the clock;
* combinational designs — drive inputs, settle, sample.

``run_sequence`` applies an initial reset pulse for sequential designs so
every run starts from the architectural reset state.
"""

from __future__ import annotations

from repro.errors import ElaborationError, SimulationError
from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Design, Symbol
from repro.hdl.values import BV
from repro.sim.scheduler import Simulator


class Testbench:
    """Drives one design instance (original or mutant) cycle by cycle."""

    def __init__(
        self,
        design: Design,
        patch: dict[int, ast.Node] | None = None,
        max_delta: int = 256,
        backend: str = "interp",
    ):
        self._design = design
        self._sim = Simulator(design, patch, max_delta, backend)
        clocks = design.clocks
        resets = design.resets
        if len(clocks) > 1 or len(resets) > 1:
            raise ElaborationError(
                f"design {design.name!r} uses multiple clock or reset "
                "signals; the testbench supports at most one of each"
            )
        self._clock = clocks[0] if clocks else None
        self._reset = resets[0] if resets else None
        self._reset_level = 1
        for process in design.processes:
            if process.reset:
                self._reset_level = process.reset_level

    @property
    def design(self) -> Design:
        return self._design

    @property
    def is_sequential(self) -> bool:
        return self._clock is not None

    def reset(self) -> None:
        """Apply the asynchronous reset pulse (sequential designs only)."""
        self._sim.initialize()
        if not self.is_sequential:
            return
        if self._reset is not None:
            self._sim.set_inputs({self._clock: 0})
            self._sim.set_inputs({self._reset: self._reset_level})
            # One clock pulse under reset mirrors common ITC'99 benches.
            self._sim.set_inputs({self._clock: 1})
            self._sim.set_inputs({self._clock: 0})
            self._sim.set_inputs({self._reset: 1 - self._reset_level})
        else:
            self._sim.set_inputs({self._clock: 0})

    def step(self, stimulus: dict[str, object]) -> tuple:
        """Apply one stimulus and return the sampled output tuple."""
        for name in stimulus:
            self._sim.require_port(name)
        if self.is_sequential:
            inputs = dict(stimulus)
            inputs[self._clock] = 0
            self._sim.set_inputs(inputs)
            self._sim.set_inputs({self._clock: 1})
            outputs = self._sim.snapshot_outputs()
            self._sim.set_inputs({self._clock: 0})
            return outputs
        self._sim.set_inputs(dict(stimulus))
        return self._sim.snapshot_outputs()

    def run_sequence(self, stimuli: list[dict[str, object]]) -> list[tuple]:
        """Reset, then apply every stimulus, returning per-cycle outputs."""
        self.reset()
        return [self.step(stimulus) for stimulus in stimuli]

    def save_state(self) -> tuple:
        """Checkpoint the simulation state (see Simulator.save_state)."""
        return self._sim.save_state()

    def restore_state(self, state: tuple) -> None:
        self._sim.restore_state(state)


class StimulusEncoder:
    """Packs integers into stimulus dictionaries and back.

    Test generators treat a stimulus as one unsigned integer of
    ``width`` bits.  Ports are packed in declaration order, the first
    data input port occupying the most significant bits.  Integer and
    enum ports map their bit-field onto their value range with a modulo,
    so every integer in ``[0, 2**width)`` decodes to a legal stimulus.
    """

    def __init__(self, design: Design):
        self._design = design
        self._fields: list[tuple[Symbol, int]] = []
        width = 0
        for port in design.data_input_ports:
            port_width = _port_width(port)
            self._fields.append((port, port_width))
            width += port_width
        self._width = width

    @property
    def width(self) -> int:
        return self._width

    @property
    def design(self) -> Design:
        return self._design

    @property
    def field_widths(self) -> tuple[int, ...]:
        """Per-port field widths, MSB-first (packing order).

        Structure-aware consumers (the ``repro.search`` mutators) use
        these to mutate one input field at a time instead of treating
        the packed stimulus as an opaque bit string.
        """
        return tuple(width for _, width in self._fields)

    def decode(self, packed: int) -> dict[str, object]:
        """Expand ``packed`` into a port-value dictionary."""
        if packed < 0:
            raise SimulationError("stimulus integers must be non-negative")
        stimulus: dict[str, object] = {}
        shift = self._width
        for port, port_width in self._fields:
            shift -= port_width
            field = (packed >> shift) & ((1 << port_width) - 1)
            stimulus[port.name] = _field_to_value(field, port.ty)
        return stimulus

    def encode(self, stimulus: dict[str, object]) -> int:
        """Pack a port-value dictionary back into an integer."""
        packed = 0
        for port, port_width in self._fields:
            value = stimulus[port.name]
            packed = (packed << port_width) | _value_to_field(value, port.ty)
        return packed


def encode_outputs(design: Design, outputs: tuple) -> int:
    """Pack a Testbench output tuple into one integer.

    Bit order matches the synthesized netlist's ``output_bits`` (ports in
    declaration order, MSB first within a port), so behavioural and
    gate-level responses can be compared as integers.
    """
    packed = 0
    for port, value in zip(design.output_ports, outputs):
        width = _port_width(port)
        packed = (packed << width) | _value_to_field(value, port.ty)
    return packed


def _port_width(port: Symbol) -> int:
    if isinstance(port.ty, ty.BitType):
        return 1
    if isinstance(port.ty, ty.BitVectorType):
        return port.ty.width
    if isinstance(port.ty, ty.IntegerType):
        return port.ty.bit_width
    if isinstance(port.ty, ty.EnumType):
        return port.ty.bit_width
    raise SimulationError(f"unsupported input port type {port.ty}")


def _field_to_value(field: int, port_type: ty.HdlType):
    if isinstance(port_type, ty.BitType):
        return field & 1
    if isinstance(port_type, ty.BitVectorType):
        return BV(field, port_type.width)
    if isinstance(port_type, ty.IntegerType):
        span = port_type.high - port_type.low + 1
        return port_type.low + (field % span)
    if isinstance(port_type, ty.EnumType):
        return field % len(port_type.literals)
    raise SimulationError(f"unsupported input port type {port_type}")


def _value_to_field(value, port_type: ty.HdlType) -> int:
    if isinstance(port_type, ty.BitType):
        return int(value) & 1
    if isinstance(port_type, ty.BitVectorType):
        return value.value if isinstance(value, BV) else int(value)
    if isinstance(port_type, ty.IntegerType):
        return int(value) - port_type.low
    if isinstance(port_type, ty.EnumType):
        return int(value)
    raise SimulationError(f"unsupported input port type {port_type}")
