"""Behavioural simulator for elaborated designs.

* :class:`repro.sim.scheduler.Simulator` — delta-cycle, event-driven
  process execution with mutant patch tables
* :class:`repro.sim.testbench.Testbench` — clocking/reset protocol and
  sequence application
* :class:`repro.sim.testbench.StimulusEncoder` — packs integers into
  port-value dictionaries so test generators can treat stimuli as plain
  bit-vectors
"""

from repro.hdl.values import BV, check_in_range, default_value
from repro.sim.scheduler import Simulator
from repro.sim.testbench import StimulusEncoder, Testbench

__all__ = [
    "BV",
    "Simulator",
    "StimulusEncoder",
    "Testbench",
    "check_in_range",
    "default_value",
]
