"""Delta-cycle, event-driven simulation of an elaborated design.

The simulator follows VHDL's two-phase model: triggered processes read
the *current* signal values and schedule updates; updates are committed
together; signals whose value changed form the event set that wakes the
next round of processes.  Delta rounds repeat until quiescence (or
:class:`repro.errors.OscillationError` after ``max_delta`` rounds, which
can legitimately happen for mutants that create combinational cycles).
"""

from __future__ import annotations

from repro.errors import OscillationError, SimulationError
from repro.hdl import ast
from repro.hdl.design import Design, Process
from repro.sim.interp import process_context


class Simulator:
    """Executes a design, optionally through a mutant patch table.

    ``backend`` selects the process executor: ``"interp"`` walks the
    AST (reference semantics), ``"compiled"`` runs closure-compiled
    bodies (~5-10x faster; used for mutant campaigns).
    """

    def __init__(
        self,
        design: Design,
        patch: dict[int, ast.Node] | None = None,
        max_delta: int = 256,
        backend: str = "interp",
    ):
        self._design = design
        if backend == "compiled":
            from repro.sim.compiler import CompiledExecutor

            self._executor = CompiledExecutor(design, patch)
        elif backend == "interp":
            from repro.sim.compiler import InterpretedExecutor

            self._executor = InterpretedExecutor(design, patch)
        else:
            raise SimulationError(f"unknown backend {backend!r}")
        self._max_delta = max_delta
        # Signal store.
        self._values: dict[str, object] = {}
        for symbol in design.signal_like_symbols:
            self._values[symbol.name] = symbol.init
        # Per-process persistent variable stores.
        self._variables: dict[str, dict[str, object]] = {}
        for process in design.processes:
            self._variables[process.label] = {
                var.name: var.init for var in process.variables
            }
        # Sensitivity map: signal name -> processes to wake.
        self._watchers: dict[str, list[Process]] = {}
        for process in design.processes:
            for name in process.sensitivity:
                self._watchers.setdefault(name, []).append(process)
        self._scheduled: dict[str, object] = {}
        self._initialized = False

    @property
    def design(self) -> Design:
        return self._design

    # -- signal access ---------------------------------------------------------

    def read(self, name: str):
        """Current value of a signal or port."""
        return self._values[name]

    def _schedule(self, name: str, value) -> None:
        self._scheduled[name] = value

    def _schedule_base(self, name: str):
        """Base value for partial (bit/slice) signal updates.

        Projections accumulate within one delta: the second ``v(i) <=``
        in the same round builds on the first one's pending value.
        """
        if name in self._scheduled:
            return self._scheduled[name]
        return self._values[name]

    # -- execution ---------------------------------------------------------------

    def initialize(self) -> None:
        """Run every process once (VHDL time-zero activation), settle."""
        if self._initialized:
            return
        self._initialized = True
        self._run_processes(self._design.processes, events=set())
        events = self._commit()
        self._settle(events)

    def set_inputs(self, values: dict[str, object]) -> None:
        """Drive input ports and settle all resulting activity."""
        self.initialize()
        events = set()
        for name, value in values.items():
            if self._values[name] != value:
                self._values[name] = value
                events.add(name)
        self._settle(events)

    def _settle(self, events: set[str]) -> None:
        for _ in range(self._max_delta):
            if not events:
                return
            triggered: list[Process] = []
            seen: set[str] = set()
            for name in events:
                for process in self._watchers.get(name, ()):
                    if process.label not in seen:
                        seen.add(process.label)
                        triggered.append(process)
            self._run_processes(triggered, events)
            events = self._commit()
        raise OscillationError(
            f"design {self._design.name!r} did not settle after "
            f"{self._max_delta} delta cycles"
        )

    def _run_processes(self, processes: list[Process], events: set[str]) -> None:
        for process in processes:
            ctx = process_context(
                process,
                self.read,
                self._schedule,
                self._schedule_base,
                self._variables[process.label],
                events,
            )
            self._executor.exec_process(process, ctx)

    def _commit(self) -> set[str]:
        events: set[str] = set()
        for name, value in self._scheduled.items():
            if self._values[name] != value:
                self._values[name] = value
                events.add(name)
        self._scheduled.clear()
        return events

    # -- state checkpointing ------------------------------------------------------

    def save_state(self) -> tuple:
        """Checkpoint signal values and process variables.

        Values are immutable (ints, bools, BV), so shallow dict copies
        capture the full machine state.
        """
        return (
            dict(self._values),
            {label: dict(vars_) for label, vars_ in self._variables.items()},
            self._initialized,
        )

    def restore_state(self, state: tuple) -> None:
        values, variables, initialized = state
        self._values = dict(values)
        self._variables = {
            label: dict(vars_) for label, vars_ in variables.items()
        }
        self._initialized = initialized
        self._scheduled.clear()

    # -- convenience -------------------------------------------------------------

    def snapshot_outputs(self) -> tuple:
        """Current values of the output ports, in declaration order."""
        return tuple(
            self._values[port.name] for port in self._design.output_ports
        )

    def require_port(self, name: str) -> None:
        if name not in self._values:
            raise SimulationError(f"unknown signal {name!r}")
