"""Expression evaluation and statement execution with mutant patching.

The evaluator resolves every node through a *patch table* (``nid`` ->
replacement node) before interpreting it, which is how mutants execute
without copying the design (mutant schema).  Runtime type errors caused
by patched nodes (out-of-range writes, division by zero, bad indexes)
raise :class:`repro.errors.MutantRuntimeError`, which the mutation engine
counts as a kill.
"""

from __future__ import annotations

from repro.errors import MutantRuntimeError, SimulationError
from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Process, Symbol, SymbolKind
from repro.hdl.values import BV


class ExecContext:
    """Mutable state one process sees while executing.

    ``read_signal``/``schedule`` are bound to the owning simulator;
    ``variables`` persists across process activations (VHDL semantics);
    ``loop_stack`` holds for-loop variable bindings.
    """

    __slots__ = (
        "read_signal",
        "schedule",
        "schedule_base",
        "variables",
        "loop_stack",
        "events",
    )

    def __init__(self, read_signal, schedule, schedule_base, variables, events):
        self.read_signal = read_signal
        self.schedule = schedule
        self.schedule_base = schedule_base
        self.variables = variables
        self.loop_stack: list[tuple[str, int]] = []
        self.events = events

    def loop_value(self, name: str) -> int:
        for var, value in reversed(self.loop_stack):
            if var == name:
                return value
        raise SimulationError(f"unbound loop variable {name!r}")


class Evaluator:
    """Interprets (possibly patched) process bodies."""

    def __init__(self, patch: dict[int, ast.Node] | None = None):
        self._patch = patch if patch is not None else {}

    # -- patch plumbing ------------------------------------------------------

    def resolve(self, node: ast.Node) -> ast.Node:
        if not self._patch:
            return node
        return self._patch.get(node.nid, node)

    # -- statements ----------------------------------------------------------

    def exec_body(self, body: list[ast.Stmt], ctx: ExecContext) -> None:
        for stmt in body:
            self.exec_stmt(stmt, ctx)

    def exec_stmt(self, stmt: ast.Stmt, ctx: ExecContext) -> None:
        stmt = self.resolve(stmt)
        if isinstance(stmt, ast.SignalAssign):
            value = self.eval(stmt.value, ctx)
            self._assign(stmt.target, value, ctx, signal=True)
        elif isinstance(stmt, ast.VarAssign):
            value = self.eval(stmt.value, ctx)
            self._assign(stmt.target, value, ctx, signal=False)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.arms:
                if self._truth(self.eval(cond, ctx)):
                    self.exec_body(body, ctx)
                    return
            self.exec_body(stmt.else_body, ctx)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, ctx)
        elif isinstance(stmt, ast.ForLoop):
            self._exec_for(stmt, ctx)
        elif isinstance(stmt, ast.NullStmt):
            pass
        else:  # pragma: no cover - analyzer rejects other statements
            raise SimulationError(f"cannot execute {type(stmt).__name__}")

    def _exec_case(self, stmt: ast.Case, ctx: ExecContext) -> None:
        selector = self.eval(stmt.selector, ctx)
        others_body = None
        for when in stmt.whens:
            if when.is_others:
                others_body = when.body
                continue
            for choice in when.choices:
                if self._values_equal(self.eval(choice, ctx), selector):
                    self.exec_body(when.body, ctx)
                    return
        if others_body is not None:
            self.exec_body(others_body, ctx)

    def _exec_for(self, stmt: ast.ForLoop, ctx: ExecContext) -> None:
        low = self.eval(stmt.low, ctx)
        high = self.eval(stmt.high, ctx)
        if stmt.direction == "to":
            values = range(low, high + 1)
        else:
            values = range(low, high - 1, -1)
        ctx.loop_stack.append((stmt.var, 0))
        try:
            for value in values:
                ctx.loop_stack[-1] = (stmt.var, value)
                self.exec_body(stmt.body, ctx)
        finally:
            ctx.loop_stack.pop()

    def _assign(
        self, target: ast.Expr, value, ctx: ExecContext, signal: bool
    ) -> None:
        target = self.resolve(target)
        if isinstance(target, ast.Name):
            symbol: Symbol = target.symbol
            checked = _coerce(value, symbol.ty)
            if signal:
                ctx.schedule(symbol.name, checked)
            else:
                ctx.variables[symbol.name] = checked
            return
        if isinstance(target, ast.Index):
            base: ast.Name = target.prefix
            symbol = base.symbol
            index = self.eval(target.index, ctx)
            offset = _bit_offset(symbol.ty, index)
            bit = _coerce(value, ty.BIT)
            if signal:
                current = ctx.schedule_base(symbol.name)
                ctx.schedule(symbol.name, current.with_bit(offset, bit))
            else:
                current = ctx.variables[symbol.name]
                ctx.variables[symbol.name] = current.with_bit(offset, bit)
            return
        if isinstance(target, ast.Slice):
            base = target.prefix
            symbol = base.symbol
            left = self.eval(target.left, ctx)
            right = self.eval(target.right, ctx)
            high = _bit_offset(symbol.ty, left)
            low = _bit_offset(symbol.ty, right)
            piece = value
            if not isinstance(piece, BV) or piece.width != high - low + 1:
                raise MutantRuntimeError("slice assignment width mismatch")
            if signal:
                current = ctx.schedule_base(symbol.name)
                ctx.schedule(symbol.name, current.with_slice(high, low, piece))
            else:
                current = ctx.variables[symbol.name]
                ctx.variables[symbol.name] = current.with_slice(high, low, piece)
            return
        raise SimulationError(
            f"unsupported assignment target {type(target).__name__}"
        )

    # -- expressions -----------------------------------------------------------

    def eval(self, node: ast.Expr, ctx: ExecContext):
        node = self.resolve(node)
        kind = type(node)
        if kind is ast.Name:
            symbol: Symbol = node.symbol
            sym_kind = symbol.kind
            if sym_kind in (SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL):
                return symbol.init
            if sym_kind is SymbolKind.VARIABLE:
                return ctx.variables[symbol.name]
            if sym_kind is SymbolKind.LOOP_VAR:
                return ctx.loop_value(symbol.name)
            return ctx.read_signal(symbol.name)
        if kind is ast.IntLit:
            return node.value
        if kind is ast.BitLit:
            return node.value
        if kind is ast.BoolLit:
            return node.value
        if kind is ast.BitStringLit:
            return BV.from_string(node.bits)
        if kind is ast.EnumLit:
            return node.index
        if kind is ast.Binary:
            return self._eval_binary(node, ctx)
        if kind is ast.Unary:
            return self._eval_unary(node, ctx)
        if kind is ast.Index:
            vector = self.eval(node.prefix, ctx)
            index = self.eval(node.index, ctx)
            prefix = self.resolve(node.prefix)
            offset = _bit_offset(_vector_type(prefix), index)
            return vector.bit(offset)
        if kind is ast.Slice:
            vector = self.eval(node.prefix, ctx)
            left = self.eval(node.left, ctx)
            right = self.eval(node.right, ctx)
            prefix = self.resolve(node.prefix)
            vec_type = _vector_type(prefix)
            return vector.slice(
                _bit_offset(vec_type, left), _bit_offset(vec_type, right)
            )
        if kind is ast.Attribute:
            # Only 'event is supported: true when the prefix signal changed
            # in the commit that triggered this activation.
            prefix = self.resolve(node.prefix)
            return prefix.symbol.name in ctx.events
        if kind is ast.Call:
            signal = self.resolve(node.args[0])
            name = signal.symbol.name
            if node.func == "rising_edge":
                return name in ctx.events and ctx.read_signal(name) == 1
            if node.func == "falling_edge":
                return name in ctx.events and ctx.read_signal(name) == 0
            raise SimulationError(f"unknown function {node.func!r}")
        if kind is ast.OthersAggregate:
            bit = self.eval(node.value, ctx)
            width = node.ty.width
            return BV((1 << width) - 1 if bit else 0, width)
        raise SimulationError(f"cannot evaluate {kind.__name__}")

    def _eval_unary(self, node: ast.Unary, ctx: ExecContext):
        value = self.eval(node.operand, ctx)
        op = node.op
        if op == "not":
            if value is True or value is False:
                return not value
            if isinstance(value, BV):
                return BV(~value.value, value.width)
            return value ^ 1
        if op == "-":
            return -value
        raise SimulationError(f"unsupported unary operator {op!r}")

    def _eval_binary(self, node: ast.Binary, ctx: ExecContext):
        op = node.op
        left = self.eval(node.left, ctx)
        right = self.eval(node.right, ctx)
        if op in _LOGICAL:
            return _apply_logical(op, left, right)
        if op == "=":
            return self._values_equal(left, right)
        if op == "/=":
            return not self._values_equal(left, right)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "mod":
            if right == 0:
                raise MutantRuntimeError("mod by zero")
            return left % right
        if op == "rem":
            if right == 0:
                raise MutantRuntimeError("rem by zero")
            return left - right * int(left / right)
        if op == "&":
            return _concat(left, right)
        raise SimulationError(f"unsupported binary operator {op!r}")

    @staticmethod
    def _values_equal(left, right) -> bool:
        if isinstance(left, BV) or isinstance(right, BV):
            if not (isinstance(left, BV) and isinstance(right, BV)):
                raise MutantRuntimeError("comparing vector with scalar")
            if left.width != right.width:
                raise MutantRuntimeError("comparing vectors of unequal width")
            return left.value == right.value
        return left == right

    @staticmethod
    def _truth(value) -> bool:
        if value is True or value is False:
            return value
        raise MutantRuntimeError(f"condition is not boolean: {value!r}")


_LOGICAL = frozenset({"and", "or", "nand", "nor", "xor", "xnor"})


def _apply_logical(op: str, left, right):
    if isinstance(left, bool) and isinstance(right, bool):
        truth = {
            "and": left and right,
            "or": left or right,
            "nand": not (left and right),
            "nor": not (left or right),
            "xor": left != right,
            "xnor": left == right,
        }
        return truth[op]
    if isinstance(left, BV) and isinstance(right, BV):
        if left.width != right.width:
            raise MutantRuntimeError("logical op on vectors of unequal width")
        raw = _bitwise(op, left.value, right.value)
        return BV(raw, left.width)
    if isinstance(left, int) and isinstance(right, int):
        return _bitwise(op, left, right) & 1
    raise MutantRuntimeError(
        f"logical operator {op!r} on mixed operand kinds"
    )


def _bitwise(op: str, a: int, b: int) -> int:
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "nand":
        return ~(a & b)
    if op == "nor":
        return ~(a | b)
    return ~(a ^ b)  # xnor


def _concat(left, right) -> BV:
    left_bv = left if isinstance(left, BV) else BV(left, 1)
    right_bv = right if isinstance(right, BV) else BV(right, 1)
    return left_bv.concat(right_bv)


def _vector_type(prefix: ast.Expr) -> ty.BitVectorType:
    if isinstance(prefix.ty, ty.BitVectorType):
        return prefix.ty
    raise MutantRuntimeError("indexing a non-vector value")


def _bit_offset(vec_type: ty.HdlType, index: int) -> int:
    if not isinstance(vec_type, ty.BitVectorType):
        raise MutantRuntimeError("indexing a non-vector value")
    try:
        return vec_type.bit_index(index)
    except ValueError as exc:
        raise MutantRuntimeError(str(exc)) from None


def _coerce(value, target_type: ty.HdlType):
    """Range/width-check ``value`` against ``target_type``.

    Out-of-range results become :class:`MutantRuntimeError` so mutant
    execution reports a kill instead of corrupting state.
    """
    if isinstance(target_type, ty.BitType):
        if value in (0, 1) and not isinstance(value, bool):
            return value
        raise MutantRuntimeError(f"cannot assign {value!r} to bit")
    if isinstance(target_type, ty.BooleanType):
        if isinstance(value, bool):
            return value
        raise MutantRuntimeError(f"cannot assign {value!r} to boolean")
    if isinstance(target_type, ty.IntegerType):
        if isinstance(value, int) and not isinstance(value, bool):
            if target_type.contains(value):
                return value
            raise MutantRuntimeError(
                f"value {value} outside {target_type}"
            )
        raise MutantRuntimeError(f"cannot assign {value!r} to integer")
    if isinstance(target_type, ty.EnumType):
        if isinstance(value, int) and 0 <= value < len(target_type.literals):
            return value
        raise MutantRuntimeError(f"cannot assign {value!r} to {target_type}")
    if isinstance(target_type, ty.BitVectorType):
        if isinstance(value, BV) and value.width == target_type.width:
            return value
        raise MutantRuntimeError(f"cannot assign {value!r} to {target_type}")
    raise SimulationError(f"unknown target type {target_type!r}")


def process_context(
    process: Process,
    read_signal,
    schedule,
    schedule_base,
    variables: dict,
    events: set,
) -> ExecContext:
    """Build the execution context for one process activation."""
    return ExecContext(read_signal, schedule, schedule_base, variables, events)
