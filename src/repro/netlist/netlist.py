"""Netlist data structure and the hash-consing builder.

A :class:`Netlist` is a flat sea of 2-input (or n-ary, when read from
``.bench``) gates plus D flip-flops.  Ports map names to lists of net
ids, MSB first, so vector ports survive synthesis.

:class:`NetlistBuilder` is the construction API used by synthesis: it
folds constants, normalizes commutative operand order, and hash-conses
structurally identical gates so the emitted netlist has no duplicate
logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.cells import GateType


@dataclass
class Net:
    nid: int
    name: str


@dataclass
class Gate:
    gid: int
    gate_type: GateType
    inputs: list[int]          # net ids
    output: int                # net id


@dataclass
class DFF:
    fid: int
    d: int                     # data input net id
    q: int                     # output net id
    reset_value: int = 0       # architectural reset state (0/1)
    name: str = ""


@dataclass
class Netlist:
    """A flat gate-level design."""

    name: str
    nets: list[Net] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    dffs: list[DFF] = field(default_factory=list)
    #: ordered (port name, [net ids MSB..LSB]) pairs
    input_ports: list[tuple[str, list[int]]] = field(default_factory=list)
    output_ports: list[tuple[str, list[int]]] = field(default_factory=list)
    #: behavioural signal name -> [net ids MSB..LSB]; populated by
    #: synthesis so analyses can report netlist facts in source terms.
    #: Empty for netlists read directly from ``.bench`` files.
    signal_map: dict[str, list[int]] = field(default_factory=dict)

    @property
    def input_bits(self) -> list[int]:
        """All input net ids, port order, MSB first within a port."""
        return [nid for _, bits in self.input_ports for nid in bits]

    @property
    def output_bits(self) -> list[int]:
        return [nid for _, bits in self.output_ports for nid in bits]

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net_name(self, nid: int) -> str:
        return self.nets[nid].name

    def driver_map(self) -> dict[int, Gate | DFF | str]:
        """Map net id -> its driver (gate, dff, or the string 'input')."""
        drivers: dict[int, Gate | DFF | str] = {}

        def set_driver(nid: int, driver) -> None:
            if nid in drivers:
                raise NetlistError(
                    f"net {self.net_name(nid)!r} has multiple drivers"
                )
            drivers[nid] = driver

        for nid in self.input_bits:
            set_driver(nid, "input")
        for gate in self.gates:
            set_driver(gate.output, gate)
        for dff in self.dffs:
            set_driver(dff.q, dff)
        return drivers

    def fanout_map(self) -> dict[int, list[tuple[Gate, int]]]:
        """Map net id -> [(gate, input pin index)] loads."""
        fanout: dict[int, list[tuple[Gate, int]]] = {}
        for gate in self.gates:
            for pin, nid in enumerate(gate.inputs):
                fanout.setdefault(nid, []).append((gate, pin))
        return fanout

    def validate(self) -> None:
        """Check single-driver discipline and dangling references."""
        drivers = self.driver_map()
        valid = set(range(len(self.nets)))
        for gate in self.gates:
            for nid in gate.inputs + [gate.output]:
                if nid not in valid:
                    raise NetlistError(f"gate {gate.gid} references net {nid}")
        for gate in self.gates:
            for nid in gate.inputs:
                if nid not in drivers:
                    raise NetlistError(
                        f"gate {gate.gid} input net "
                        f"{self.net_name(nid)!r} is undriven"
                    )
        for dff in self.dffs:
            if dff.d not in drivers:
                raise NetlistError(
                    f"dff {dff.name!r} data net {self.net_name(dff.d)!r} "
                    "is undriven"
                )
        for _, bits in self.output_ports:
            for nid in bits:
                if nid not in drivers:
                    raise NetlistError(
                        f"output net {self.net_name(nid)!r} is undriven"
                    )

    def stats(self) -> dict[str, int]:
        from repro.netlist.levelize import levelize

        by_type: dict[str, int] = {}
        for gate in self.gates:
            by_type[gate.gate_type.value] = (
                by_type.get(gate.gate_type.value, 0) + 1
            )
        levels = levelize(self)
        depth = max(
            (levels[g.output] for g in self.gates), default=0
        )
        return {
            "gates": len(self.gates),
            "dffs": len(self.dffs),
            "nets": len(self.nets),
            "inputs": len(self.input_bits),
            "outputs": len(self.output_bits),
            "depth": depth,
            **{f"gate_{k.lower()}": v for k, v in sorted(by_type.items())},
        }


_COMMUTATIVE = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR,
     GateType.XNOR}
)

#: Constant nets use sentinel ids, resolved to real nets only if they
#: survive folding into the final netlist.
CONST0 = -1
CONST1 = -2


class NetlistBuilder:
    """Builds optimized netlists: folding + structural hashing.

    Net handles during construction are either real net ids (>= 0) or
    the constant sentinels :data:`CONST0` / :data:`CONST1`.  ``finish``
    materializes sentinel constants that leaked into ports or flip-flop
    inputs as CONST gates.
    """

    def __init__(self, name: str):
        self._netlist = Netlist(name)
        self._dedup: dict[tuple, int] = {}
        self._not_cache: dict[int, int] = {}
        self._const_nets: dict[int, int] = {}

    # -- nets -------------------------------------------------------------

    def new_net(self, name: str) -> int:
        nid = len(self._netlist.nets)
        self._netlist.nets.append(Net(nid, name))
        return nid

    def add_input_port(self, name: str, width: int) -> list[int]:
        bits = [
            self.new_net(f"{name}[{i}]" if width > 1 else name)
            for i in reversed(range(width))
        ]
        self._netlist.input_ports.append((name, bits))
        return bits

    def set_output_port(self, name: str, bits: list[int]) -> None:
        real = [self._materialize(nid) for nid in bits]
        self._netlist.output_ports.append((name, real))

    # -- gates ------------------------------------------------------------

    def gate(self, gate_type: GateType, *inputs: int) -> int:
        """Create (or reuse) a gate; returns its output net handle."""
        ins = list(inputs)
        if gate_type in (GateType.BUF,):
            return ins[0]
        if gate_type is GateType.NOT:
            return self.g_not(ins[0])
        folded = self._fold(gate_type, ins)
        if folded is not None:
            return folded
        if gate_type in _COMMUTATIVE:
            ins = sorted(ins)
        key = (gate_type, tuple(ins))
        cached = self._dedup.get(key)
        if cached is not None:
            return cached
        out = self.new_net(f"n{len(self._netlist.nets)}")
        real_ins = [self._materialize(nid) for nid in ins]
        self._netlist.gates.append(
            Gate(len(self._netlist.gates), gate_type, real_ins, out)
        )
        self._dedup[key] = out
        return out

    def g_not(self, a: int) -> int:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        cached = self._not_cache.get(a)
        if cached is not None:
            return cached
        out = self.new_net(f"n{len(self._netlist.nets)}")
        self._netlist.gates.append(
            Gate(len(self._netlist.gates), GateType.NOT, [a], out)
        )
        self._not_cache[a] = out
        self._not_cache[out] = a
        return out

    def g_and(self, a: int, b: int) -> int:
        return self.gate(GateType.AND, a, b)

    def g_or(self, a: int, b: int) -> int:
        return self.gate(GateType.OR, a, b)

    def g_xor(self, a: int, b: int) -> int:
        return self.gate(GateType.XOR, a, b)

    def g_xnor(self, a: int, b: int) -> int:
        return self.gate(GateType.XNOR, a, b)

    def g_nand(self, a: int, b: int) -> int:
        return self.gate(GateType.NAND, a, b)

    def g_nor(self, a: int, b: int) -> int:
        return self.gate(GateType.NOR, a, b)

    def mux(self, sel: int, when_true: int, when_false: int) -> int:
        """2:1 mux out = sel ? when_true : when_false."""
        if sel == CONST1:
            return when_true
        if sel == CONST0:
            return when_false
        if when_true == when_false:
            return when_true
        if when_true == CONST1 and when_false == CONST0:
            return sel
        if when_true == CONST0 and when_false == CONST1:
            return self.g_not(sel)
        return self.g_or(
            self.g_and(sel, when_true),
            self.g_and(self.g_not(sel), when_false),
        )

    def reduce_tree_and(self, bits: list[int]) -> int:
        return self.reduce_tree(GateType.AND, bits)

    def reduce_tree_or(self, bits: list[int]) -> int:
        return self.reduce_tree(GateType.OR, bits)

    def reduce_tree_xor(self, bits: list[int]) -> int:
        return self.reduce_tree(GateType.XOR, bits)

    def reduce_tree(self, gate_type: GateType, bits: list[int]) -> int:
        """Balanced reduction (AND/OR/XOR) over ``bits``."""
        if not bits:
            raise NetlistError("cannot reduce an empty bit list")
        layer = list(bits)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.gate(gate_type, layer[i], layer[i + 1]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def _fold(self, gate_type: GateType, ins: list[int]) -> int | None:
        """Constant folding for 2-input gates; None if nothing folds."""
        if len(ins) != 2:
            return None
        a, b = ins
        consts = {CONST0, CONST1}
        if gate_type is GateType.AND:
            if CONST0 in ins:
                return CONST0
            if a == CONST1:
                return b
            if b == CONST1:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return CONST0
        elif gate_type is GateType.OR:
            if CONST1 in ins:
                return CONST1
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return CONST1
        elif gate_type is GateType.XOR:
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == CONST1:
                return self.g_not(b)
            if b == CONST1:
                return self.g_not(a)
            if a == b:
                return CONST0
            if self._not_cache.get(a) == b:
                return CONST1
        elif gate_type is GateType.XNOR:
            if a == CONST1:
                return b
            if b == CONST1:
                return a
            if a == CONST0:
                return self.g_not(b)
            if b == CONST0:
                return self.g_not(a)
            if a == b:
                return CONST1
            if self._not_cache.get(a) == b:
                return CONST0
        elif gate_type is GateType.NAND:
            if a in consts or b in consts or a == b or (
                self._not_cache.get(a) == b
            ):
                return self.g_not(self.gate(GateType.AND, a, b))
        elif gate_type is GateType.NOR:
            if a in consts or b in consts or a == b or (
                self._not_cache.get(a) == b
            ):
                return self.g_not(self.gate(GateType.OR, a, b))
        return None

    # -- flip-flops -------------------------------------------------------

    def add_dff(self, name: str, reset_value: int) -> int:
        """Create a DFF shell; connect its D later with ``connect_dff``."""
        q = self.new_net(name)
        self._netlist.dffs.append(
            DFF(len(self._netlist.dffs), d=-999, q=q,
                reset_value=reset_value, name=name)
        )
        return q

    def connect_dff(self, q: int, d: int) -> None:
        for dff in self._netlist.dffs:
            if dff.q == q:
                dff.d = self._materialize(d)
                return
        raise NetlistError(f"no DFF with q net {q}")

    # -- finishing ----------------------------------------------------------

    def _materialize(self, nid: int) -> int:
        """Resolve constant sentinels into driven nets."""
        if nid >= 0:
            return nid
        if nid in self._const_nets:
            return self._const_nets[nid]
        gate_type = GateType.CONST0 if nid == CONST0 else GateType.CONST1
        out = self.new_net("const0" if nid == CONST0 else "const1")
        self._netlist.gates.append(
            Gate(len(self._netlist.gates), gate_type, [], out)
        )
        self._const_nets[nid] = out
        return out

    def finish(self) -> Netlist:
        for dff in self._netlist.dffs:
            if dff.d == -999:
                raise NetlistError(f"DFF {dff.name!r} was never connected")
        self._netlist.validate()
        return self._netlist
