"""Bit-parallel logic simulation of netlists.

Patterns ride bit-lanes of arbitrary-precision integers: simulating
4096 patterns costs one pass over the gates with 4096-bit words.  The
sequential stepping convention matches
:class:`repro.sim.testbench.Testbench` exactly (drive inputs, evaluate,
clock the flip-flops, re-evaluate, sample), so behavioural and
synthesized models can be compared cycle by cycle.
"""

from __future__ import annotations

from repro.engine import build_engine
from repro.errors import SimulationError
from repro.netlist.netlist import Netlist


class CombSimulator:
    """Evaluates the combinational core over pattern words.

    ``engine`` selects the evaluation backend by name (or instance, see
    :func:`repro.engine.build_engine`); the default is the registry's
    default backend.
    """

    def __init__(self, netlist: Netlist, engine=None):
        self._netlist = netlist
        self._engine = build_engine(engine)

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def engine(self):
        return self._engine

    def evaluate(
        self, input_words: dict[int, int], mask: int,
        state_words: dict[int, int] | None = None,
    ) -> dict[int, int]:
        """Words for every net given input (and DFF output) words."""
        words: dict[int, int] = dict(input_words)
        if state_words:
            words.update(state_words)
        for dff in self._netlist.dffs:
            if dff.q not in words:
                raise SimulationError(
                    f"missing state word for DFF {dff.name!r}"
                )
        for nid in self._netlist.input_bits:
            if nid not in words:
                raise SimulationError(
                    f"missing input word for net "
                    f"{self._netlist.net_name(nid)!r}"
                )
        return self._engine.eval_full(self._netlist, words, mask)

    def apply_patterns(self, patterns: list[int]) -> list[int]:
        """Convenience: apply packed input patterns, return packed outputs.

        Each pattern is an integer whose bits follow
        ``netlist.input_bits`` order (first listed net = MSB).  Output
        integers follow ``netlist.output_bits`` order likewise.
        """
        count = len(patterns)
        if count == 0:
            return []
        mask = (1 << count) - 1
        input_words = unpack_patterns(
            patterns, self._netlist.input_bits
        )
        state = {dff.q: 0 for dff in self._netlist.dffs}
        words = self.evaluate(input_words, mask, state)
        return pack_outputs(words, self._netlist.output_bits, count)


class SeqSimulator:
    """Cycle-by-cycle simulation with pattern-parallel lanes.

    All lanes share the same input sequence timing; they differ only in
    input values per lane.  The common single-lane use passes mask=1.
    """

    def __init__(self, netlist: Netlist, mask: int = 1, engine=None):
        self._netlist = netlist
        self._comb = CombSimulator(netlist, engine)
        self._mask = mask
        self._state: dict[int, int] = {}
        self.reset()

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    def reset(self) -> None:
        """Load every DFF with its architectural reset value (all lanes)."""
        self._state = {
            dff.q: (self._mask if dff.reset_value else 0)
            for dff in self._netlist.dffs
        }

    def step(self, input_words: dict[int, int]) -> dict[int, int]:
        """One clock cycle; returns net words *after* the clock edge."""
        words = self._comb.evaluate(input_words, self._mask, self._state)
        next_state = {dff.q: words[dff.d] for dff in self._netlist.dffs}
        self._state = next_state
        words = self._comb.evaluate(input_words, self._mask, self._state)
        return words

    def run_packed(self, stimuli: list[int]) -> list[int]:
        """Apply packed single-lane stimuli; returns packed outputs."""
        outputs = []
        for packed in stimuli:
            input_words = unpack_patterns([packed], self._netlist.input_bits)
            words = self.step(input_words)
            outputs.extend(
                pack_outputs(words, self._netlist.output_bits, 1)
            )
        return outputs


def unpack_patterns(
    patterns: list[int], ordered_nets: list[int]
) -> dict[int, int]:
    """Transpose packed patterns into per-net lane words.

    Bit *j* (from MSB) of each pattern drives ``ordered_nets[j]``; lane
    *i* of each net word is pattern *i*.
    """
    width = len(ordered_nets)
    words = {nid: 0 for nid in ordered_nets}
    for lane, pattern in enumerate(patterns):
        if pattern < 0 or pattern >> width:
            raise SimulationError(
                f"pattern {pattern:#x} does not fit {width} input bits"
            )
        for j, nid in enumerate(ordered_nets):
            bit = (pattern >> (width - 1 - j)) & 1
            if bit:
                words[nid] |= 1 << lane
    return words


def pack_outputs(
    words: dict[int, int], ordered_nets: list[int], count: int
) -> list[int]:
    """Inverse transpose: per-net lane words into packed output integers."""
    outputs = []
    width = len(ordered_nets)
    for lane in range(count):
        packed = 0
        for nid in ordered_nets:
            packed = (packed << 1) | ((words[nid] >> lane) & 1)
        outputs.append(packed)
    _ = width
    return outputs
