"""Gate cell library: types and bit-parallel evaluation.

Evaluation operates on Python integers used as bit-lane words: lane *i*
of every net word belongs to pattern/fault-machine *i*.  All functions
mask their result to ``mask`` so complements stay bounded.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce


class GateType(Enum):
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_const(self) -> bool:
        return self in (GateType.CONST0, GateType.CONST1)

    @property
    def arity(self) -> int | None:
        """Fixed arity, or None for n-ary gates."""
        if self in (GateType.NOT, GateType.BUF):
            return 1
        if self.is_const:
            return 0
        return None


#: Controlling input value per gate type (classic ATPG notion): a single
#: input at this value forces the output regardless of the others.
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Output inversion parity per gate type.
INVERTING = {
    GateType.NAND: True,
    GateType.NOR: True,
    GateType.XNOR: True,
    GateType.NOT: True,
    GateType.AND: False,
    GateType.OR: False,
    GateType.XOR: False,
    GateType.BUF: False,
}


def eval_gate(gate_type: GateType, inputs: list[int], mask: int) -> int:
    """Evaluate one gate over bit-lane words."""
    if gate_type is GateType.AND:
        return reduce(lambda a, b: a & b, inputs) & mask
    if gate_type is GateType.OR:
        return reduce(lambda a, b: a | b, inputs) & mask
    if gate_type is GateType.NAND:
        return ~reduce(lambda a, b: a & b, inputs) & mask
    if gate_type is GateType.NOR:
        return ~reduce(lambda a, b: a | b, inputs) & mask
    if gate_type is GateType.XOR:
        return reduce(lambda a, b: a ^ b, inputs) & mask
    if gate_type is GateType.XNOR:
        return ~reduce(lambda a, b: a ^ b, inputs) & mask
    if gate_type is GateType.NOT:
        return ~inputs[0] & mask
    if gate_type is GateType.BUF:
        return inputs[0] & mask
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    raise ValueError(f"unknown gate type {gate_type!r}")
