"""Topological ordering of the combinational core of a netlist."""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist


def topo_gates(netlist: Netlist) -> list[Gate]:
    """Gates in dependency order (inputs and DFF outputs are sources).

    Raises :class:`NetlistError` on combinational cycles.
    """
    ready: set[int] = set(netlist.input_bits)
    for dff in netlist.dffs:
        ready.add(dff.q)
    pending = list(netlist.gates)
    ordered: list[Gate] = []
    # Kahn-style sweep; the per-round filter keeps it O(E) amortized
    # because gates usually arrive roughly in dependency order.
    while pending:
        progressed = False
        remaining: list[Gate] = []
        for gate in pending:
            if all(nid in ready for nid in gate.inputs):
                ordered.append(gate)
                ready.add(gate.output)
                progressed = True
            else:
                remaining.append(gate)
        if not progressed:
            names = [netlist.net_name(g.output) for g in remaining[:5]]
            raise NetlistError(
                f"combinational cycle involving nets {names}"
            )
        pending = remaining
    return ordered


def levelize(netlist: Netlist) -> dict[int, int]:
    """Map net id -> logic level (inputs/DFF outputs are level 0)."""
    levels: dict[int, int] = {nid: 0 for nid in netlist.input_bits}
    for dff in netlist.dffs:
        levels[dff.q] = 0
    for gate in topo_gates(netlist):
        if gate.inputs:
            levels[gate.output] = 1 + max(levels[n] for n in gate.inputs)
        else:
            levels[gate.output] = 0
    return levels
