"""Gate-level netlist substrate.

* :class:`repro.netlist.netlist.Netlist` — nets, gates, flip-flops, port
  bit mappings
* :class:`repro.netlist.netlist.NetlistBuilder` — hash-consing,
  constant-folding gate construction (used by synthesis)
* :mod:`repro.netlist.bench` — ISCAS ``.bench`` reader/writer
* :mod:`repro.netlist.simulate` — bit-parallel logic simulation; each
  Python big-int word carries one bit-lane per pattern (or per fault)
"""

from repro.netlist.cells import GateType
from repro.netlist.netlist import DFF, Gate, Net, Netlist, NetlistBuilder
from repro.netlist.simulate import CombSimulator, SeqSimulator
from repro.netlist.bench import parse_bench, write_bench

__all__ = [
    "DFF",
    "CombSimulator",
    "Gate",
    "GateType",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "SeqSimulator",
    "parse_bench",
    "write_bench",
]
