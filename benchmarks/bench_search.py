"""Performance/quality: search strategies at an equal candidate budget.

Parametrized over every registered :mod:`repro.search` strategy on one
combinational and one sequential circuit, each run with the same
candidate cap and the shipped comparison seed, so the kills-per-
candidate trajectory (``BENCH_search.json``, via
``benchmarks/run_benchmarks.py --suite search``) tracks search quality
against the blind ``random`` baseline over time.
"""

import pytest

from repro.circuits import load_circuit
from repro.experiments.search_compare import DEFAULT_SEARCH_SEED
from repro.mutation import MutationEngine, generate_mutants
from repro.search import SearchBudget, search_strategy_names
from repro.testgen import MutationTestGenerator

#: One circuit per style, sized for CI smoke runs.
CIRCUITS = ("c17", "b01")
BUDGET = 256


@pytest.fixture(scope="module")
def populations():
    cache = {}
    for name in CIRCUITS:
        design = load_circuit(name)
        cache[name] = (
            design, generate_mutants(design), MutationEngine(design)
        )
    return cache


@pytest.mark.parametrize("strategy", search_strategy_names())
@pytest.mark.parametrize("circuit", CIRCUITS)
def test_search_strategy_throughput(benchmark, populations, circuit, strategy):
    design, mutants, engine = populations[circuit]

    def run():
        generator = MutationTestGenerator(
            design,
            seed=DEFAULT_SEARCH_SEED,
            engine=engine,
            max_vectors=64,
            strategy=strategy,
            search_budget=SearchBudget(max_candidates=BUDGET),
        )
        return generator.generate(mutants)

    result = benchmark(run)
    assert result.killed_mids
    benchmark.extra_info.update(
        circuit=circuit,
        strategy=strategy,
        style="seq" if design.is_sequential else "comb",
        budget=BUDGET,
        candidates=result.candidates_tried,
        vectors=len(result.vectors),
        killed=len(result.killed_mids),
        targets=result.total_targets,
    )
