"""Ablation: does the sampling-rate choice (10%) matter?"""

from benchmarks.conftest import write_out
from repro.experiments.ablation import run_rate_ablation
from repro.experiments.report import rows_text


def test_sampling_rate_ablation(benchmark, config):
    rows = benchmark.pedantic(
        lambda: run_rate_ablation(
            circuit="b01", rates=(0.05, 0.10, 0.20), config=config,
            max_vectors=96,
        ),
        rounds=1,
        iterations=1,
    )
    text = rows_text(
        rows,
        ["Circuit", "Variant", "Fraction", "Selected", "MS%", "NLFCE"],
        ["circuit", "variant", "fraction", "selected", "ms_pct", "nlfce"],
        "Ablation: sampling rate sweep (b01)",
    )
    write_out("ablation_rate.txt", text)
    print()
    print(text)
    assert len(rows) == 6  # 3 rates x 2 strategies
    # Larger samples never hurt the mutation score for a fixed strategy.
    for variant in ("random", "test-oriented"):
        scores = [
            r.ms_pct for r in rows if r.variant == variant
        ]
        assert max(scores) >= scores[0] - 1e-9
