"""Ablation: weight scheme for the test-oriented sampler."""

from benchmarks.conftest import write_out
from repro.experiments.ablation import run_weight_ablation
from repro.experiments.report import rows_text


def test_weight_scheme_ablation(benchmark, config):
    rows = benchmark.pedantic(
        lambda: run_weight_ablation(
            circuit="b01", config=config, max_vectors=96
        ),
        rounds=1,
        iterations=1,
    )
    text = rows_text(
        rows,
        ["Circuit", "Variant", "Fraction", "Selected", "MS%", "NLFCE"],
        ["circuit", "variant", "fraction", "selected", "ms_pct", "nlfce"],
        "Ablation: weighting schemes (b01, 10%)",
    )
    write_out("ablation_weights.txt", text)
    print()
    print(text)
    variants = {r.variant for r in rows}
    assert {"paper-ranks", "uniform", "calibrated"} <= variants
