"""Performance: grid fault-validation throughput vs worker count.

One circuit's stuck-at validation — the campaign's dominant kernel —
sharded into :mod:`repro.grid` work units and executed on the
``process`` scheduler at 1/2/4/8 workers.  ``run_benchmarks.py
--suite grid`` turns the results into the ``BENCH_grid.json``
workers-vs-throughput trajectory at the repo root.

The executor (and its persistent worker pool) lives for the whole
parametrized test, so pool spawn and per-worker lab synthesis land in
the warmup pass exactly as they amortize across a real campaign's
many dispatch waves.  ``cpus`` is recorded per row: on a single-core
container the trajectory documents overhead, not speedup.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import CampaignConfig
from repro.experiments.context import get_lab
from repro.grid import GridExecutor
from repro.sim import StimulusEncoder
from repro.circuits import load_circuit
from repro.util import rng_stream
from benchmarks.conftest import bench_config

WORKERS = (1, 2, 4, 8)
#: The two big ISCAS'85 comb benches plus the largest ITC'99 seq bench.
CIRCUITS = ("c432", "c499", "b03")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _stimuli(name: str, count: int) -> list[int]:
    design = load_circuit(name)
    width = StimulusEncoder(design).width
    rng = rng_stream(1, name, "bench-grid")
    return [rng.getrandbits(width) for _ in range(count)]


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", CIRCUITS)
def test_grid_fault_validation_throughput(benchmark, name, workers):
    lab_config = bench_config()
    config = CampaignConfig(
        seed=lab_config.seed,
        random_budget_comb=lab_config.random_budget_comb,
        random_budget_seq=lab_config.random_budget_seq,
        equivalence_budget=lab_config.equivalence_budget,
        engine=lab_config.engine,
        grid="process",
        grid_workers=workers,
    )
    lab = get_lab(name, lab_config)
    sequential = lab.design.is_sequential
    # Campaign-scale pattern counts, so each unit carries enough work
    # to amortize dispatch (the baseline validation uses 1024-2048).
    stimuli = _stimuli(name, 128 if sequential else 1024)
    executor = GridExecutor(config)
    try:
        # Warm pass: pool spawn + per-worker synthesis/compilation.
        executor.fault_sim(lab, stimuli, "bench-warmup")
        benchmark.extra_info.update(
            circuit=name, workers=workers, cpus=_cpus(),
            style="seq" if sequential else "comb",
            patterns=len(stimuli), faults=len(lab.faults),
            engine=config.engine,
        )
        result = benchmark(executor.fault_sim, lab, stimuli, "bench")
    finally:
        executor.close()
    assert result.coverage() > 0.3
    assert result.detection == lab.fault_sim(stimuli).detection
