"""Benchmark harness configuration.

Table-regeneration benches drive the *same code paths* as the
``python -m repro table1/table2`` CLI, with budgets reduced so the suite
completes in minutes.  Set ``REPRO_BENCH_FULL=1`` to run the paper-scale
configuration (c499's 3.3k-mutant population included); rendered tables
are written to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.context import LabConfig

OUT_DIR = Path(__file__).parent / "out"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_config() -> LabConfig:
    if full_scale():
        return LabConfig(
            random_budget_comb=2048, random_budget_seq=1024,
            equivalence_budget=192,
        )
    return LabConfig(
        random_budget_comb=512, random_budget_seq=256,
        equivalence_budget=64,
    )


def bench_circuits() -> tuple[str, ...]:
    if full_scale():
        return ("b01", "b03", "c432", "c499")
    return ("b01", "b03", "c432")


def write_out(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def config():
    return bench_config()


@pytest.fixture(scope="session")
def circuits():
    return bench_circuits()
