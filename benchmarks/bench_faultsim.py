"""Performance: stuck-at fault simulation throughput."""

import pytest

from repro.fault import CombFaultSimulator, SeqFaultSimulator, collapse_faults
from repro.sim import StimulusEncoder
from repro.util import rng_stream
from tests.conftest import netlist_of
from repro.circuits import load_circuit


@pytest.mark.parametrize("name", ["c432", "c499"])
def test_comb_fault_sim_throughput(benchmark, name):
    netlist = netlist_of(name)
    faults = collapse_faults(netlist)
    width = len(netlist.input_bits)
    rng = rng_stream(1, name, "bench-fsim")
    patterns = [rng.getrandbits(width) for _ in range(256)]
    simulator = CombFaultSimulator(netlist, faults)
    result = benchmark(simulator.simulate, patterns)
    assert result.coverage() > 0.5


@pytest.mark.parametrize("name", ["b01", "b03"])
def test_seq_fault_sim_throughput(benchmark, name):
    netlist = netlist_of(name)
    design = load_circuit(name)
    faults = collapse_faults(netlist)
    width = StimulusEncoder(design).width
    rng = rng_stream(1, name, "bench-fsim")
    stimuli = [rng.getrandbits(width) for _ in range(128)]
    simulator = SeqFaultSimulator(netlist, faults, lanes=256)
    result = benchmark(simulator.simulate, stimuli)
    assert result.coverage() > 0.3
