"""Performance: stuck-at fault simulation throughput, per engine.

Parametrized over every registered :mod:`repro.engine` backend so the
``interp`` reference, the ``compiled`` code-generating backend and the
``vector`` bit-packed backend are measured side by side;
``benchmarks/run_benchmarks.py`` turns the results into the
``BENCH_engine.json`` trajectory at the repo root.
"""

import pytest

from repro.engine import engine_names
from repro.fault import CombFaultSimulator, SeqFaultSimulator, collapse_faults
from repro.sim import StimulusEncoder
from repro.util import rng_stream
from tests.conftest import netlist_of
from repro.circuits import load_circuit


@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("name", ["c432", "c499"])
def test_comb_fault_sim_throughput(benchmark, name, engine):
    netlist = netlist_of(name)
    faults = collapse_faults(netlist)
    width = len(netlist.input_bits)
    rng = rng_stream(1, name, "bench-fsim")
    patterns = [rng.getrandbits(width) for _ in range(256)]
    simulator = CombFaultSimulator(netlist, faults, engine=engine)
    benchmark.extra_info.update(
        circuit=name, engine=engine, style="comb",
        patterns=len(patterns), faults=len(faults),
    )
    result = benchmark(simulator.simulate, patterns)
    assert result.coverage() > 0.5


@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("name", ["b01", "b03"])
def test_seq_fault_sim_throughput(benchmark, name, engine):
    netlist = netlist_of(name)
    design = load_circuit(name)
    faults = collapse_faults(netlist)
    width = StimulusEncoder(design).width
    rng = rng_stream(1, name, "bench-fsim")
    stimuli = [rng.getrandbits(width) for _ in range(128)]
    simulator = SeqFaultSimulator(netlist, faults, lanes=256, engine=engine)
    benchmark.extra_info.update(
        circuit=name, engine=engine, style="seq",
        patterns=len(stimuli), faults=len(faults),
    )
    result = benchmark(simulator.simulate, stimuli)
    assert result.coverage() > 0.3


# -- telemetry overhead -------------------------------------------------------
#
# The same compiled-engine passes with a live metrics registry, so
# BENCH_engine.json carries the telemetry cost next to the plain
# ``compiled`` rows (the disabled-path baseline).  The budget is a few
# percent: instrumentation is per simulation *pass*, never per fault.

def test_comb_fault_sim_telemetry_overhead(benchmark):
    from repro.obs import metrics as obs_metrics

    netlist = netlist_of("c432")
    faults = collapse_faults(netlist)
    width = len(netlist.input_bits)
    rng = rng_stream(1, "c432", "bench-fsim")
    patterns = [rng.getrandbits(width) for _ in range(256)]
    simulator = CombFaultSimulator(netlist, faults, engine="compiled")
    benchmark.extra_info.update(
        circuit="c432", engine="compiled+obs", style="comb",
        patterns=len(patterns), faults=len(faults),
    )
    obs_metrics.enable()
    try:
        result = benchmark(simulator.simulate, patterns)
    finally:
        obs_metrics.disable()
    assert result.coverage() > 0.5


def test_seq_fault_sim_telemetry_overhead(benchmark):
    from repro.obs import metrics as obs_metrics

    netlist = netlist_of("b01")
    design = load_circuit("b01")
    faults = collapse_faults(netlist)
    width = StimulusEncoder(design).width
    rng = rng_stream(1, "b01", "bench-fsim")
    stimuli = [rng.getrandbits(width) for _ in range(128)]
    simulator = SeqFaultSimulator(netlist, faults, lanes=256,
                                  engine="compiled")
    benchmark.extra_info.update(
        circuit="b01", engine="compiled+obs", style="seq",
        patterns=len(stimuli), faults=len(faults),
    )
    obs_metrics.enable()
    try:
        result = benchmark(simulator.simulate, stimuli)
    finally:
        obs_metrics.disable()
    assert result.coverage() > 0.3
