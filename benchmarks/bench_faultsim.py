"""Performance: stuck-at fault simulation throughput, per engine.

Parametrized over every registered :mod:`repro.engine` backend so the
``interp`` reference, the ``compiled`` code-generating backend and the
``vector`` bit-packed backend are measured side by side;
``benchmarks/run_benchmarks.py`` turns the results into the
``BENCH_engine.json`` trajectory at the repo root.
"""

import pytest

from repro.engine import engine_names
from repro.fault import CombFaultSimulator, SeqFaultSimulator, collapse_faults
from repro.sim import StimulusEncoder
from repro.util import rng_stream
from tests.conftest import netlist_of
from repro.circuits import load_circuit


@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("name", ["c432", "c499"])
def test_comb_fault_sim_throughput(benchmark, name, engine):
    netlist = netlist_of(name)
    faults = collapse_faults(netlist)
    width = len(netlist.input_bits)
    rng = rng_stream(1, name, "bench-fsim")
    patterns = [rng.getrandbits(width) for _ in range(256)]
    simulator = CombFaultSimulator(netlist, faults, engine=engine)
    benchmark.extra_info.update(
        circuit=name, engine=engine, style="comb",
        patterns=len(patterns), faults=len(faults),
    )
    result = benchmark(simulator.simulate, patterns)
    assert result.coverage() > 0.5


@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("name", ["b01", "b03"])
def test_seq_fault_sim_throughput(benchmark, name, engine):
    netlist = netlist_of(name)
    design = load_circuit(name)
    faults = collapse_faults(netlist)
    width = StimulusEncoder(design).width
    rng = rng_stream(1, name, "bench-fsim")
    stimuli = [rng.getrandbits(width) for _ in range(128)]
    simulator = SeqFaultSimulator(netlist, faults, lanes=256, engine=engine)
    benchmark.extra_info.update(
        circuit=name, engine=engine, style="seq",
        patterns=len(stimuli), faults=len(faults),
    )
    result = benchmark(simulator.simulate, stimuli)
    assert result.coverage() > 0.3
