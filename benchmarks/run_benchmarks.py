#!/usr/bin/env python
"""Run the fault-simulation perf suite; append to ``BENCH_engine.json``.

Drives ``benchmarks/bench_faultsim.py`` through pytest-benchmark (so the
numbers come from calibrated, warmed-up rounds — compilation cost of the
``compiled`` backend lands in the warmup, exactly as it amortizes in
real campaigns), converts the per-(circuit, engine) means into
throughput rows ``{circuit, backend, patterns_per_sec, faults_per_sec}``
and appends one run to the ``BENCH_engine.json`` trajectory at the repo
root, together with a per-circuit speedup summary of every backend
against the ``interp`` reference.

Usage::

    python benchmarks/run_benchmarks.py [--json PATH] [--pytest-args ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"
REFERENCE = "interp"


def run_suite(extra_args: list[str]) -> dict:
    """Run bench_faultsim.py under pytest-benchmark; return its JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "benchmark.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        command = [
            sys.executable, "-m", "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_faultsim.py"),
            "-q", "--benchmark-only",
            "--benchmark-min-rounds=3",
            "--benchmark-max-time=0.5",
            f"--benchmark-json={report}",
            *extra_args,
        ]
        subprocess.run(command, check=True, cwd=REPO_ROOT, env=env)
        with open(report, "r", encoding="utf-8") as handle:
            return json.load(handle)


def rows_from_report(report: dict) -> list[dict]:
    rows = []
    for bench in report["benchmarks"]:
        info = bench["extra_info"]
        seconds = bench["stats"]["mean"]
        rows.append({
            "circuit": info["circuit"],
            "backend": info["engine"],
            "style": info["style"],
            "patterns": info["patterns"],
            "faults": info["faults"],
            "seconds_per_pass": seconds,
            "patterns_per_sec": info["patterns"] / seconds,
            "faults_per_sec": info["faults"] / seconds,
        })
    rows.sort(key=lambda r: (r["circuit"], r["backend"]))
    return rows


def speedups(rows: list[dict]) -> dict:
    """backend -> circuit -> throughput multiple over the reference."""
    reference = {
        row["circuit"]: row["seconds_per_pass"]
        for row in rows if row["backend"] == REFERENCE
    }
    table: dict[str, dict[str, float]] = {}
    for row in rows:
        if row["backend"] == REFERENCE or row["circuit"] not in reference:
            continue
        table.setdefault(row["backend"], {})[row["circuit"]] = round(
            reference[row["circuit"]] / row["seconds_per_pass"], 2
        )
    return table


def append_run(path: Path, rows: list[dict]) -> dict:
    """Append one run to the trajectory file; returns the run entry."""
    trajectory = {"benchmark": "fault-simulation throughput", "runs": []}
    if path.exists():
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing.get("runs"), list):
                trajectory = existing
        except (OSError, ValueError):
            pass  # unreadable trajectory: start a fresh one
    run = {
        "sequence": len(trajectory["runs"]) + 1,
        "rows": rows,
        f"speedup_vs_{REFERENCE}": speedups(rows),
    }
    trajectory["runs"].append(run)
    # Small summary only — duplicating the full row data here would
    # bloat every committed trajectory diff.
    trajectory["latest"] = {
        "sequence": run["sequence"],
        f"speedup_vs_{REFERENCE}": run[f"speedup_vs_{REFERENCE}"],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=str(DEFAULT_OUT), metavar="PATH",
                        help="trajectory file to append to "
                             "(default: BENCH_engine.json at the repo root)")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args(argv)

    report = run_suite(args.pytest_args)
    rows = rows_from_report(report)
    if not rows:
        print("no benchmark rows produced", file=sys.stderr)
        return 1
    run = append_run(Path(args.json), rows)

    width = max(len(r["circuit"]) for r in rows)
    for row in rows:
        print(
            f"{row['circuit']:{width}s} {row['backend']:10s}"
            f" {row['patterns_per_sec']:12.1f} patterns/s"
            f" {row['faults_per_sec']:12.1f} faults/s"
        )
    for backend, per_circuit in run[f"speedup_vs_{REFERENCE}"].items():
        pairs = ", ".join(
            f"{c}: {s:.2f}x" for c, s in sorted(per_circuit.items())
        )
        print(f"speedup {backend} vs {REFERENCE}: {pairs}")
    print(f"trajectory written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
