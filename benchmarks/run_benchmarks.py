#!/usr/bin/env python
"""Run a perf suite; append one run to its ``BENCH_*.json`` trajectory.

Four suites, selected with ``--suite`` (default ``engine``):

* ``engine`` — ``bench_faultsim.py``: fault-simulation throughput per
  backend, appended to ``BENCH_engine.json`` with a per-circuit speedup
  summary of every backend against the ``interp`` reference.
* ``search`` — ``bench_search.py``: search-strategy quality at an equal
  candidate budget, appended to ``BENCH_search.json`` as a
  kills-per-candidate trajectory with a per-circuit gain summary of
  every strategy against the ``random`` baseline.
* ``grid`` — ``bench_grid.py``: one circuit's sharded fault validation
  on the ``process`` scheduler at 1/2/4/8 workers, appended to
  ``BENCH_grid.json`` as a workers-vs-throughput trajectory with a
  per-circuit wall-clock speedup summary against the 1-worker run
  (each row records ``cpus`` — interpret speedups against it).
* ``fault`` — ``bench_fault.py``: fault-model simulation throughput
  per registered model (stuck-at, transition, seu), appended to
  ``BENCH_fault.json`` with a per-circuit cost multiple of every model
  against the ``stuck-at`` reference.

All suites run under pytest-benchmark, so the numbers come from calibrated,
warmed-up rounds — compilation cost of the ``compiled`` backend lands
in the warmup, exactly as it amortizes in real campaigns.

Usage::

    python benchmarks/run_benchmarks.py [--suite engine|search|all]
                                        [--json PATH] [--pytest-args ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ENGINE_REFERENCE = "interp"
SEARCH_REFERENCE = "random"


def run_suite(bench_file: str, extra_args: list[str]) -> dict:
    """Run one bench module under pytest-benchmark; return its JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "benchmark.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        command = [
            sys.executable, "-m", "pytest",
            str(REPO_ROOT / "benchmarks" / bench_file),
            "-q", "--benchmark-only",
            "--benchmark-min-rounds=3",
            "--benchmark-max-time=0.5",
            f"--benchmark-json={report}",
            *extra_args,
        ]
        subprocess.run(command, check=True, cwd=REPO_ROOT, env=env)
        with open(report, "r", encoding="utf-8") as handle:
            return json.load(handle)


# -- engine suite -------------------------------------------------------------

def engine_rows(report: dict) -> list[dict]:
    rows = []
    for bench in report["benchmarks"]:
        info = bench["extra_info"]
        seconds = bench["stats"]["mean"]
        rows.append({
            "circuit": info["circuit"],
            "backend": info["engine"],
            "style": info["style"],
            "patterns": info["patterns"],
            "faults": info["faults"],
            "seconds_per_pass": seconds,
            "patterns_per_sec": info["patterns"] / seconds,
            "faults_per_sec": info["faults"] / seconds,
        })
    rows.sort(key=lambda r: (r["circuit"], r["backend"]))
    return rows


def engine_summary(rows: list[dict]) -> dict:
    """backend -> circuit -> throughput multiple over the reference."""
    reference = {
        row["circuit"]: row["seconds_per_pass"]
        for row in rows if row["backend"] == ENGINE_REFERENCE
    }
    table: dict[str, dict[str, float]] = {}
    for row in rows:
        if row["backend"] == ENGINE_REFERENCE or (
            row["circuit"] not in reference
        ):
            continue
        table.setdefault(row["backend"], {})[row["circuit"]] = round(
            reference[row["circuit"]] / row["seconds_per_pass"], 2
        )
    return table


def engine_print(rows: list[dict], summary: dict) -> None:
    width = max(len(r["circuit"]) for r in rows)
    for row in rows:
        print(
            f"{row['circuit']:{width}s} {row['backend']:10s}"
            f" {row['patterns_per_sec']:12.1f} patterns/s"
            f" {row['faults_per_sec']:12.1f} faults/s"
        )
    for backend, per_circuit in summary.items():
        pairs = ", ".join(
            f"{c}: {s:.2f}x" for c, s in sorted(per_circuit.items())
        )
        print(f"speedup {backend} vs {ENGINE_REFERENCE}: {pairs}")


# -- search suite -------------------------------------------------------------

def search_rows(report: dict) -> list[dict]:
    rows = []
    for bench in report["benchmarks"]:
        info = bench["extra_info"]
        seconds = bench["stats"]["mean"]
        candidates = info["candidates"]
        rows.append({
            "circuit": info["circuit"],
            "strategy": info["strategy"],
            "style": info["style"],
            "budget": info["budget"],
            "candidates": candidates,
            "vectors": info["vectors"],
            "killed": info["killed"],
            "targets": info["targets"],
            "seconds_per_run": seconds,
            "kills_per_candidate": (
                info["killed"] / candidates if candidates else 0.0
            ),
            "candidates_per_sec": candidates / seconds if seconds else 0.0,
        })
    rows.sort(key=lambda r: (r["circuit"], r["strategy"]))
    return rows


def search_summary(rows: list[dict]) -> dict:
    """strategy -> circuit -> kills-per-candidate multiple over random."""
    reference = {
        row["circuit"]: row["kills_per_candidate"]
        for row in rows if row["strategy"] == SEARCH_REFERENCE
    }
    table: dict[str, dict[str, float | None]] = {}
    for row in rows:
        base = reference.get(row["circuit"])
        if row["strategy"] == SEARCH_REFERENCE or base is None:
            continue
        # A zero baseline with guided kills is the strongest possible
        # win; keep the entry (as null) rather than dropping the circuit.
        table.setdefault(row["strategy"], {})[row["circuit"]] = (
            round(row["kills_per_candidate"] / base, 2) if base else None
        )
    return table


def search_print(rows: list[dict], summary: dict) -> None:
    width = max(len(r["circuit"]) for r in rows)
    for row in rows:
        print(
            f"{row['circuit']:{width}s} {row['strategy']:10s}"
            f" {row['killed']:5d}/{row['targets']:<5d} killed"
            f" {row['kills_per_candidate']:8.3f} kills/cand"
            f" {row['candidates_per_sec']:10.1f} cand/s"
        )
    for strategy, per_circuit in summary.items():
        pairs = ", ".join(
            f"{c}: {'inf' if s is None else f'{s:.2f}x'}"
            for c, s in sorted(per_circuit.items())
        )
        print(f"gain {strategy} vs {SEARCH_REFERENCE}: {pairs}")


# -- fault-model suite --------------------------------------------------------

FAULT_REFERENCE = "stuck-at"


def fault_rows(report: dict) -> list[dict]:
    rows = []
    for bench in report["benchmarks"]:
        info = bench["extra_info"]
        seconds = bench["stats"]["mean"]
        rows.append({
            "circuit": info["circuit"],
            "model": info["model"],
            "style": info["style"],
            "patterns": info["patterns"],
            "faults": info["faults"],
            "seconds_per_pass": seconds,
            "faults_per_sec": info["faults"] / seconds,
        })
    rows.sort(key=lambda r: (r["circuit"], r["model"]))
    return rows


def fault_summary(rows: list[dict]) -> dict:
    """model -> circuit -> wall-clock multiple over stuck-at."""
    reference = {
        row["circuit"]: row["seconds_per_pass"]
        for row in rows if row["model"] == FAULT_REFERENCE
    }
    table: dict[str, dict[str, float]] = {}
    for row in rows:
        base = reference.get(row["circuit"])
        if row["model"] == FAULT_REFERENCE or base is None:
            continue
        table.setdefault(row["model"], {})[row["circuit"]] = round(
            row["seconds_per_pass"] / base, 2
        )
    return table


def fault_print(rows: list[dict], summary: dict) -> None:
    width = max(len(r["circuit"]) for r in rows)
    for row in rows:
        print(
            f"{row['circuit']:{width}s} {row['model']:10s}"
            f" {row['seconds_per_pass']:8.3f} s/pass"
            f" {row['faults_per_sec']:12.1f} faults/s"
        )
    for model, per_circuit in sorted(summary.items()):
        pairs = ", ".join(
            f"{c}: {s:.2f}x" for c, s in sorted(per_circuit.items())
        )
        print(f"cost {model} vs {FAULT_REFERENCE}: {pairs}")


# -- grid suite ---------------------------------------------------------------

GRID_REFERENCE_WORKERS = 1


def grid_rows(report: dict) -> list[dict]:
    rows = []
    for bench in report["benchmarks"]:
        info = bench["extra_info"]
        seconds = bench["stats"]["mean"]
        rows.append({
            "circuit": info["circuit"],
            "workers": info["workers"],
            "cpus": info["cpus"],
            "style": info["style"],
            "engine": info["engine"],
            "patterns": info["patterns"],
            "faults": info["faults"],
            "seconds_per_pass": seconds,
            "faults_per_sec": info["faults"] / seconds,
        })
    rows.sort(key=lambda r: (r["circuit"], r["workers"]))
    return rows


def grid_summary(rows: list[dict]) -> dict:
    """circuit -> workers -> wall-clock multiple over the 1-worker run."""
    reference = {
        row["circuit"]: row["seconds_per_pass"]
        for row in rows if row["workers"] == GRID_REFERENCE_WORKERS
    }
    table: dict[str, dict[str, float]] = {}
    for row in rows:
        base = reference.get(row["circuit"])
        if row["workers"] == GRID_REFERENCE_WORKERS or base is None:
            continue
        table.setdefault(row["circuit"], {})[str(row["workers"])] = round(
            base / row["seconds_per_pass"], 2
        )
    return table


def grid_print(rows: list[dict], summary: dict) -> None:
    width = max(len(r["circuit"]) for r in rows)
    for row in rows:
        print(
            f"{row['circuit']:{width}s} workers={row['workers']}"
            f" (cpus={row['cpus']})"
            f" {row['seconds_per_pass']:8.3f} s/pass"
            f" {row['faults_per_sec']:12.1f} faults/s"
        )
    for circuit, per_workers in sorted(summary.items()):
        pairs = ", ".join(
            f"{w} workers: {s:.2f}x"
            for w, s in sorted(per_workers.items(), key=lambda kv: int(kv[0]))
        )
        print(
            f"speedup {circuit} vs {GRID_REFERENCE_WORKERS} worker: {pairs}"
        )


SUITES = {
    "engine": {
        "bench": "bench_faultsim.py",
        "out": REPO_ROOT / "BENCH_engine.json",
        "title": "fault-simulation throughput",
        "rows": engine_rows,
        "summary": engine_summary,
        "summary_key": f"speedup_vs_{ENGINE_REFERENCE}",
        "print": engine_print,
    },
    "search": {
        "bench": "bench_search.py",
        "out": REPO_ROOT / "BENCH_search.json",
        "title": "search-strategy kills per candidate",
        "rows": search_rows,
        "summary": search_summary,
        "summary_key": f"gain_vs_{SEARCH_REFERENCE}",
        "print": search_print,
    },
    "fault": {
        "bench": "bench_fault.py",
        "out": REPO_ROOT / "BENCH_fault.json",
        "title": "fault-model simulation throughput",
        "rows": fault_rows,
        "summary": fault_summary,
        "summary_key": f"cost_vs_{FAULT_REFERENCE}",
        "print": fault_print,
    },
    "grid": {
        "bench": "bench_grid.py",
        "out": REPO_ROOT / "BENCH_grid.json",
        "title": "grid fault-validation throughput vs worker count",
        "rows": grid_rows,
        "summary": grid_summary,
        "summary_key": f"speedup_vs_{GRID_REFERENCE_WORKERS}_worker",
        "print": grid_print,
    },
}


def append_run(path: Path, title: str, rows: list[dict],
               summary_key: str, summary: dict) -> dict:
    """Append one run to the trajectory file; returns the run entry."""
    trajectory = {"benchmark": title, "runs": []}
    if path.exists():
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing.get("runs"), list):
                trajectory = existing
        except (OSError, ValueError):
            pass  # unreadable trajectory: start a fresh one
    run = {
        "sequence": len(trajectory["runs"]) + 1,
        "rows": rows,
        summary_key: summary,
    }
    trajectory["runs"].append(run)
    # Small summary only — duplicating the full row data here would
    # bloat every committed trajectory diff.
    trajectory["latest"] = {
        "sequence": run["sequence"],
        summary_key: summary,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return run


def run_one(name: str, json_path: str | None,
            pytest_args: list[str]) -> int:
    suite = SUITES[name]
    report = run_suite(suite["bench"], pytest_args)
    rows = suite["rows"](report)
    if not rows:
        print("no benchmark rows produced", file=sys.stderr)
        return 1
    summary = suite["summary"](rows)
    out = Path(json_path) if json_path else suite["out"]
    append_run(out, suite["title"], rows, suite["summary_key"], summary)
    suite["print"](rows, summary)
    print(f"trajectory written to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="engine",
                        choices=(*SUITES, "all"),
                        help="which benchmark suite to run (default: engine)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="trajectory file to append to (single suite "
                             "only; default: the suite's BENCH_*.json at "
                             "the repo root)")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args(argv)

    names = list(SUITES) if args.suite == "all" else [args.suite]
    if args.json and len(names) > 1:
        parser.error("--json only applies to a single suite")
    for name in names:
        status = run_one(name, args.json, args.pytest_args)
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
