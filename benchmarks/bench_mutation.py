"""Performance: mutant generation and schema execution."""

import pytest

from repro.circuits import load_circuit
from repro.mutation import MutationEngine, generate_mutants
from repro.sim import StimulusEncoder
from repro.util import rng_stream


@pytest.mark.parametrize("name", ["b01", "c432"])
def test_mutant_generation_speed(benchmark, name):
    design = load_circuit(name)
    mutants = benchmark(generate_mutants, design)
    assert len(mutants) > 100


@pytest.mark.parametrize("name", ["b01", "c432"])
def test_mutant_execution_speed(benchmark, name):
    design = load_circuit(name)
    mutants = generate_mutants(design)[:150]
    engine = MutationEngine(design)
    width = StimulusEncoder(design).width
    rng = rng_stream(2, name, "bench-mut")
    stimuli = [rng.getrandbits(width) for _ in range(32)]
    reference = engine.reference_outputs(stimuli)

    def campaign():
        return engine.run_all(mutants, stimuli, reference)

    records = benchmark.pedantic(campaign, rounds=2, iterations=1)
    assert sum(r.killed for r in records) > 0


def test_compiled_vs_interpreted_speedup(benchmark):
    """The compiled backend is the default for campaigns; measure it."""
    design = load_circuit("b03")
    width = StimulusEncoder(design).width
    rng = rng_stream(3, "bench-backend")
    stimuli = [rng.getrandbits(width) for _ in range(64)]
    compiled = MutationEngine(design, backend="compiled")

    def run():
        return compiled.reference_outputs(stimuli)

    outputs = benchmark(run)
    interp = MutationEngine(design, backend="interp")
    assert outputs == interp.reference_outputs(stimuli)
