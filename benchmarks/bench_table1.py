"""Regenerates the paper's Table 1 (operator fault-coverage efficiency).

The measured artefact is the end-to-end experiment: per-operator mutant
generation, mutation-adequate test generation, gate-level fault
simulation and the NLFCE comparison against the pseudo-random baseline.
"""

from benchmarks.conftest import write_out
from repro.experiments.report import table1_text
from repro.experiments.table1 import run_table1


def test_table1_regeneration(benchmark, config, circuits):
    result = benchmark.pedantic(
        lambda: run_table1(
            circuits=circuits, config=config, max_vectors=96
        ),
        rounds=1,
        iterations=1,
    )
    text = table1_text(result)
    write_out("table1.txt", text)
    print()
    print(text)
    covered = {row.circuit for row in result.rows}
    assert covered == set(circuits)
    # The paper's headline ordering: LOR is never the best operator.
    for circuit in covered:
        efficiencies = result.nlfce_by_operator(circuit)
        if "LOR" in efficiencies and len(efficiencies) > 1:
            best = max(efficiencies, key=efficiencies.get)
            assert best != "LOR", (circuit, efficiencies)
