"""Performance: elaboration and synthesis of the benchmark suite."""

import pytest

from repro.circuits import get_circuit
from repro.hdl import load_design
from repro.synth import synthesize


@pytest.mark.parametrize("name", ["b01", "b03", "c432", "c499"])
def test_parse_and_elaborate_speed(benchmark, name):
    source = get_circuit(name).source
    design = benchmark(load_design, source, name)
    assert design.processes


@pytest.mark.parametrize("name", ["b03", "c499"])
def test_synthesis_speed(benchmark, name):
    source = get_circuit(name).source
    design = load_design(source, name)
    netlist = benchmark(synthesize, design)
    assert netlist.gates
