"""Regenerates the paper's Table 2 (sampling-strategy comparison)."""

from benchmarks.conftest import write_out
from repro.experiments.report import table2_text
from repro.experiments.table2 import run_table2


def test_table2_regeneration(benchmark, config, circuits):
    result = benchmark.pedantic(
        lambda: run_table2(
            circuits=circuits, config=config, max_vectors=96,
            calibrate=True,
        ),
        rounds=1,
        iterations=1,
    )
    text = table2_text(result)
    write_out("table2.txt", text)
    print()
    print(text)
    for circuit in circuits:
        random_row = result.row(circuit, "random")
        ours = result.row(circuit, "test-oriented")
        # Both strategies must draw identical sample sizes (paper: "the
        # two strategies extract exactly the same percentage").
        assert random_row.selected == ours.selected
        assert 0.0 <= ours.ms_pct <= 100.0
