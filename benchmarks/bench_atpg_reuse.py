"""Regenerates the validation-data-reuse experiment (paper §1 claim)."""

from benchmarks.conftest import write_out
from repro.experiments.atpg_reuse import run_atpg_reuse
from repro.experiments.report import rows_text


def test_atpg_reuse(benchmark, config):
    # A tight backtrack limit bounds per-fault effort (aborts are
    # reported, as in ATPG practice); the reuse-vs-scratch comparison
    # uses identical limits on both sides.
    rows = benchmark.pedantic(
        lambda: run_atpg_reuse(
            circuits=("c17", "c432"), config=config, max_vectors=96,
            backtrack_limit=24, fault_stride=4,
        ),
        rounds=1,
        iterations=1,
    )
    text = rows_text(
        rows,
        ["Circuit", "Mode", "Preload", "Cov0%", "Faults", "Decisions",
         "Backtracks", "ATPG vecs", "Final%"],
        ["circuit", "mode", "preload_vectors", "preload_coverage_pct",
         "targeted_faults", "decisions", "backtracks", "atpg_vectors",
         "final_coverage_pct"],
        "Validation-data reuse vs deterministic-only ATPG",
    )
    write_out("atpg_reuse.txt", text)
    print()
    print(text)
    by_key = {(r.circuit, r.mode): r for r in rows}
    for circuit in ("c17", "c432"):
        only = by_key[(circuit, "atpg-only")]
        reuse = by_key[(circuit, "reuse")]
        # The paper's claim: reuse targets fewer faults deterministically.
        assert reuse.targeted_faults < only.targeted_faults
        assert reuse.decisions <= only.decisions
