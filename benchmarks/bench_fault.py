"""Performance: fault-model simulation throughput, per model.

Parametrized over every registered :mod:`repro.fault.models` model so
the ``stuck-at`` reference, the two-pattern ``transition`` model and
the cycle-sampled ``seu`` model are measured side by side on one comb
and one seq circuit; ``benchmarks/run_benchmarks.py --suite fault``
turns the results into the ``BENCH_fault.json`` trajectory at the repo
root.
"""

import pytest

from repro.circuits import load_circuit
from repro.fault.models import build_fault_model, fault_model_names
from repro.sim import StimulusEncoder
from repro.util import rng_stream
from tests.conftest import netlist_of


@pytest.mark.parametrize("model_name", fault_model_names())
@pytest.mark.parametrize("name", ["c432", "b01"])
def test_fault_model_throughput(benchmark, name, model_name):
    netlist = netlist_of(name)
    model = build_fault_model(model_name)
    faults = model.collapse(netlist)
    style = "seq" if netlist.dffs else "comb"
    if style == "seq":
        width = StimulusEncoder(load_circuit(name)).width
        count = 128
    else:
        width = len(netlist.input_bits)
        count = 256
    rng = rng_stream(1, name, "bench-fault", model_name)
    stimuli = [rng.getrandbits(width) for _ in range(count)]
    benchmark.extra_info.update(
        circuit=name, model=model_name, style=style,
        patterns=len(stimuli), faults=len(faults),
    )
    result = benchmark(
        model.simulate, netlist, stimuli, faults, 256
    )
    assert result.detected > 0


# -- pruned vs unpruned -------------------------------------------------------
#
# The same stuck-at pass with provably untestable faults statically
# pruned (repro.analyze.prune), so BENCH_fault.json carries the
# payoff of ``prune_untestable`` next to the full-universe rows.  On
# circuits with no dead or constant logic (c432) the rows coincide;
# on b01 the pruned pass simulates measurably fewer faults.

@pytest.mark.parametrize("name", ["c432", "b01"])
def test_fault_model_throughput_pruned(benchmark, name):
    from repro.analyze import split_untestable

    netlist = netlist_of(name)
    model = build_fault_model("stuck-at")
    testable, pruned = split_untestable(netlist, model.collapse(netlist))
    style = "seq" if netlist.dffs else "comb"
    if style == "seq":
        width = StimulusEncoder(load_circuit(name)).width
        count = 128
    else:
        width = len(netlist.input_bits)
        count = 256
    rng = rng_stream(1, name, "bench-fault", "stuck-at")
    stimuli = [rng.getrandbits(width) for _ in range(count)]
    benchmark.extra_info.update(
        circuit=name, model="stuck-at+prune", style=style,
        patterns=len(stimuli), faults=len(testable), pruned=len(pruned),
    )
    result = benchmark(
        model.simulate, netlist, stimuli, testable, 256
    )
    assert result.detected > 0
